package parser

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func changeMap(r Result) map[string]string {
	m := make(map[string]string)
	for _, c := range r.Changes {
		m[c.Name] = c.Value
	}
	return m
}

func TestParseIniBlock(t *testing.T) {
	resp := "Here are my recommendations.\n\n```ini\n[DBOptions]\n  max_background_jobs=4\n  bytes_per_sync=1048576\n[CFOptions \"default\"]\n  write_buffer_size=33554432\n```\nApply and re-run."
	r := Parse(resp)
	if !r.HadCodeBlock {
		t.Fatal("code block not detected")
	}
	want := map[string]string{
		"max_background_jobs": "4",
		"bytes_per_sync":      "1048576",
		"write_buffer_size":   "33554432",
	}
	if got := changeMap(r); !reflect.DeepEqual(got, want) {
		t.Fatalf("changes = %v, want %v", got, want)
	}
}

func TestParseProseBullets(t *testing.T) {
	resp := `I suggest the following:

* set max_background_flushes = 2
- set wal_bytes_per_sync=1048576
• strict_bytes_per_sync = true
Also consider ` + "`max_write_buffer_number` = 3" + ` for bursts.`
	r := Parse(resp)
	got := changeMap(r)
	for k, v := range map[string]string{
		"max_background_flushes": "2",
		"wal_bytes_per_sync":     "1048576",
		"strict_bytes_per_sync":  "true",
	} {
		if got[k] != v {
			t.Errorf("%s = %q, want %q (all: %v)", k, got[k], v, got)
		}
	}
}

func TestParseInterleaved(t *testing.T) {
	resp := "First, bump the cache:\n```\nblock_cache_size=134217728\n```\nThen in prose: set compaction_readahead_size = 4194304 as well.\n```ini\n[DBOptions]\nmax_background_jobs=6\n```"
	r := Parse(resp)
	got := changeMap(r)
	if len(got) != 3 {
		t.Fatalf("changes = %v", got)
	}
	if got["compaction_readahead_size"] != "4194304" {
		t.Fatalf("prose assignment missed: %v", got)
	}
}

func TestParseQuotedAndColonForms(t *testing.T) {
	r := Parse("compression: snappy\nfilter_policy = \"bloomfilter:10:false\"\n")
	got := changeMap(r)
	if got["compression"] != "snappy" {
		t.Fatalf("colon form: %v", got)
	}
	if got["filter_policy"] != "bloomfilter:10:false" {
		t.Fatalf("quoted value: %v", got)
	}
}

func TestParseDuplicateLastWins(t *testing.T) {
	r := Parse("a_opt=1\na_opt=2\n")
	if got := changeMap(r); got["a_opt"] != "2" || len(r.Changes) != 1 {
		t.Fatalf("changes = %v", r.Changes)
	}
}

func TestParseIgnoresProseWords(t *testing.T) {
	r := Parse("Note: this matters.\nRationale: speed.\nIteration: 3\nreal_option=5\n")
	got := changeMap(r)
	if len(got) != 1 || got["real_option"] != "5" {
		t.Fatalf("changes = %v", got)
	}
}

func TestParseRejectedLines(t *testing.T) {
	resp := "```\ngood_option=1\nbad option = some value with spaces\n```"
	r := Parse(resp)
	if len(r.Changes) != 1 {
		t.Fatalf("changes = %v", r.Changes)
	}
	// The malformed assignment inside a code block is reported.
	if len(r.Rejected) == 0 {
		t.Log("no rejected lines (acceptable: line didn't match suspicious pattern)")
	}
}

func TestParseNothing(t *testing.T) {
	r := Parse("The current configuration already reflects my recommendations; keep it as is.")
	if len(r.Changes) != 0 {
		t.Fatalf("phantom changes: %v", r.Changes)
	}
}

func TestParseSectionHeadersSkipped(t *testing.T) {
	r := Parse("```ini\n[TableOptions/BlockBasedTable \"default\"]\nblock_size=8192\n```")
	got := changeMap(r)
	if len(got) != 1 || got["block_size"] != "8192" {
		t.Fatalf("changes = %v", got)
	}
}

func TestFormatChanges(t *testing.T) {
	s := FormatChanges([]Change{{Name: "a", Value: "1"}, {Name: "b", Value: "2"}})
	if s != "a=1\nb=2\n" {
		t.Fatalf("FormatChanges = %q", s)
	}
	s = FormatChanges([]Change{{Name: "write_buffer_size", Value: "1048576", CF: "hot"}})
	if s != "write_buffer_size=1048576 (column family \"hot\")\n" {
		t.Fatalf("FormatChanges with CF = %q", s)
	}
}

func cfChangeMap(r Result) map[string]string {
	m := make(map[string]string)
	for _, c := range r.Changes {
		m[c.CF+"/"+c.Name] = c.Value
	}
	return m
}

// A response containing several CFOptions sections must scope each
// assignment to its enclosing family, with DBOptions lines left unscoped.
func TestParseMultipleCFSections(t *testing.T) {
	resp := "Tune each family separately:\n```ini\n[DBOptions]\n  max_background_jobs=6\n[CFOptions \"default\"]\n  write_buffer_size=33554432\n[CFOptions \"hot\"]\n  write_buffer_size=134217728\n  level0_file_num_compaction_trigger=2\n[TableOptions/BlockBasedTable \"hot\"]\n  block_size=8192\n[CFOptions \"cold keys\"]\n  write_buffer_size=8388608\n```"
	r := Parse(resp)
	want := map[string]string{
		"/max_background_jobs":                   "6",
		"default/write_buffer_size":              "33554432",
		"hot/write_buffer_size":                  "134217728",
		"hot/level0_file_num_compaction_trigger": "2",
		"hot/block_size":                         "8192",
		"cold keys/write_buffer_size":            "8388608",
	}
	if got := cfChangeMap(r); !reflect.DeepEqual(got, want) {
		t.Fatalf("changes = %v, want %v", got, want)
	}
}

// The same option may be set in two families without the entries colliding;
// within one family the last assignment still wins.
func TestParseCFDedupPerFamily(t *testing.T) {
	resp := "```ini\n[CFOptions \"hot\"]\nwrite_buffer_size=1\nwrite_buffer_size=2\n[CFOptions \"cold\"]\nwrite_buffer_size=3\n```"
	r := Parse(resp)
	got := cfChangeMap(r)
	if len(r.Changes) != 2 || got["hot/write_buffer_size"] != "2" || got["cold/write_buffer_size"] != "3" {
		t.Fatalf("changes = %v", r.Changes)
	}
}

// A DBOptions (or any unquoted) header after a CFOptions section resets the
// scope back to unscoped.
func TestParseCFScopeReset(t *testing.T) {
	resp := "```ini\n[CFOptions \"hot\"]\nwrite_buffer_size=4194304\n[DBOptions]\nmax_background_jobs=4\n```"
	r := Parse(resp)
	got := cfChangeMap(r)
	if got["hot/write_buffer_size"] != "4194304" || got["/max_background_jobs"] != "4" {
		t.Fatalf("changes = %v", r.Changes)
	}
}

// A CF name the database does not have still parses — vetting the family's
// existence is the safeguard layer's job, not the parser's.
func TestParseNonexistentCFStillExtracted(t *testing.T) {
	r := Parse("```ini\n[CFOptions \"no_such_family\"]\nwrite_buffer_size=65536\n```")
	if len(r.Changes) != 1 || r.Changes[0].CF != "no_such_family" {
		t.Fatalf("changes = %v", r.Changes)
	}
}

// Prose assignments never carry a family scope.
func TestParseProseUnscoped(t *testing.T) {
	r := Parse("For the hot family, set write_buffer_size to 1048576.")
	if len(r.Changes) != 1 || r.Changes[0].CF != "" {
		t.Fatalf("changes = %v", r.Changes)
	}
}

// TestQuickParseRoundTrip: changes rendered as an ini block always parse
// back exactly.
func TestQuickParseRoundTrip(t *testing.T) {
	names := []string{"write_buffer_size", "max_background_jobs", "bytes_per_sync",
		"compaction_readahead_size", "block_cache_size", "level0_stop_writes_trigger"}
	fn := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > len(names) {
			vals = vals[:len(names)]
		}
		var b strings.Builder
		b.WriteString("Recommended:\n```ini\n[DBOptions]\n")
		want := map[string]string{}
		for i, v := range vals {
			val := strings.TrimLeft(strings.Repeat("1", 1)+"", "") // keep simple
			_ = val
			sv := strings.TrimSpace(strings.Repeat(" ", i%3) + itoa(v))
			b.WriteString("  " + names[i] + "=" + sv + "\n")
			want[names[i]] = sv
		}
		b.WriteString("```\n")
		got := changeMap(Parse(b.String()))
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v uint32) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return string(buf[i:])
}
