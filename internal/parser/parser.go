// Package parser implements the framework's Option Evaluator: it extracts
// proposed configuration changes from LLM responses, which arrive as free
// text, a single code block, or an interleaving combination of both (the
// paper's challenge #2). It is deliberately liberal in what it accepts and
// reports what it could not understand rather than guessing.
package parser

import (
	"fmt"
	"regexp"
	"strings"
)

// Change is one proposed option assignment.
type Change struct {
	Name  string
	Value string
	// CF scopes the change to a column family: the quoted name of the
	// enclosing [CFOptions "<name>"] (or TableOptions) section header in the
	// response. Empty means unscoped — DBOptions, prose, or a bare
	// assignment — which callers treat as the default family.
	CF string
}

// Result is the structured view of one LLM response.
type Result struct {
	// Changes are the extracted option assignments, in appearance order,
	// deduplicated by (column family, name) (last occurrence wins).
	Changes []Change
	// Rejected lines looked like assignments but could not be parsed.
	Rejected []string
	// HadCodeBlock reports whether a fenced code block was present.
	HadCodeBlock bool
}

var (
	reFence = regexp.MustCompile("(?s)```[a-zA-Z]*\n(.*?)```")
	// option=value with optional bullets, "set", backticks and spacing;
	// values may be quoted. Option names are snake_case identifiers.
	reAssign = regexp.MustCompile("(?i)^\\s*(?:[-*•]\\s*)?(?:set\\s+)?`?([a-z][a-z0-9_]{2,63})`?\\s*[:=]\\s*`?\"?([a-zA-Z0-9_.:/-]+)\"?`?\\s*;?,?\\s*$")
	// section headers inside ini blocks are structural, not assignments.
	reSection = regexp.MustCompile(`^\s*\[.*\]\s*$`)
	// reCFSection matches section headers that scope subsequent assignments
	// to a named column family: [CFOptions "hot"] and the family's
	// [TableOptions/BlockBasedTable "hot"] companion.
	reCFSection = regexp.MustCompile(`(?i)^\s*\[\s*(?:CFOptions|TableOptions(?:/BlockBasedTable)?)\s+"([^"]+)"\s*\]\s*$`)
	// suspiciousAssign catches lines that clearly intend an assignment but
	// failed the strict pattern (reported as Rejected).
	reSuspicious = regexp.MustCompile(`(?i)^\s*(?:[-*•]\s*)?(?:set\s+)?[a-z][a-z0-9_]{2,63}\s*[:=]`)
	// reProse finds "set option to/= value" phrases embedded in sentences
	// ("Then set compaction_readahead_size = 4194304 as well.").
	reProse = regexp.MustCompile("(?i)(?:set|change|increase|decrease|adjust|raise|lower)\\s+`?([a-z][a-z0-9_]{2,63})`?\\s*(?:to|=|:)\\s*`?\"?([a-zA-Z0-9_.:/-]+)\"?`?")
)

// nonOptionWords are identifier-looking words that appear on the left of
// ':' in prose ("Rationale: ...", "Note: ...") and must not be treated as
// options.
var nonOptionWords = map[string]bool{
	"note": true, "rationale": true, "example": true, "warning": true,
	"important": true, "summary": true, "result": true, "reason": true,
	"iteration": true, "benchmark": true, "workload": true, "memory": true,
	"storage": true, "recommendation": true, "explanation": true, "step": true,
}

// Parse extracts option changes from an LLM response. Assignments under a
// [CFOptions "<name>"] header are tagged with that column family; a
// [DBOptions] (or any other unquoted) header resets the scope.
func Parse(response string) Result {
	var res Result
	// Prefer fenced blocks: parse them first, then scan prose outside the
	// fences for additional "set x = y" lines.
	blocks := reFence.FindAllStringSubmatch(response, -1)
	prose := reFence.ReplaceAllString(response, "\n")
	if len(blocks) > 0 {
		res.HadCodeBlock = true
	}
	seen := map[string]int{} // cf + "\x00" + name -> index into res.Changes
	record := func(cf, name, value string) {
		name = strings.ToLower(name)
		if nonOptionWords[name] {
			return
		}
		key := cf + "\x00" + name
		if i, ok := seen[key]; ok {
			res.Changes[i].Value = value
			return
		}
		seen[key] = len(res.Changes)
		res.Changes = append(res.Changes, Change{Name: name, Value: value, CF: cf})
	}
	scan := func(text string, strict bool) {
		cf := "" // current column-family scope within this block
		for _, line := range strings.Split(text, "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			if reSection.MatchString(line) {
				if m := reCFSection.FindStringSubmatch(line); m != nil {
					cf = m[1]
				} else {
					cf = ""
				}
				continue
			}
			if m := reAssign.FindStringSubmatch(line); m != nil {
				record(cf, m[1], m[2])
				continue
			}
			if strict && reSuspicious.MatchString(line) {
				res.Rejected = append(res.Rejected, strings.TrimSpace(line))
				continue
			}
			if !strict {
				// Prose may embed assignments mid-sentence.
				for _, m := range reProse.FindAllStringSubmatch(line, -1) {
					record(cf, m[1], m[2])
				}
			}
		}
	}
	for _, b := range blocks {
		scan(b[1], true)
	}
	scan(prose, false)
	return res
}

// FormatChanges renders changes as "name=value" lines (for logs and the
// deterioration prompt); family-scoped changes carry the family name.
func FormatChanges(cs []Change) string {
	var b strings.Builder
	for _, c := range cs {
		if c.CF != "" {
			fmt.Fprintf(&b, "%s=%s (column family %q)\n", c.Name, c.Value, c.CF)
		} else {
			fmt.Fprintf(&b, "%s=%s\n", c.Name, c.Value)
		}
	}
	return b.String()
}
