package mockllm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/lsm"
	"repro/internal/parser"
)

// buildPrompt fabricates the framework-style prompt the expert parses.
func buildPrompt(iter int, workload, device string, cores int, memGiB float64, deteriorated bool) []llm.Message {
	var b strings.Builder
	b.WriteString("Iteration: ")
	b.WriteString(itoa(iter))
	b.WriteString("\n## System information\nCPU cores: ")
	b.WriteString(itoa(cores))
	b.WriteString("\nMemory: ")
	if memGiB == 4 {
		b.WriteString("4.0")
	} else {
		b.WriteString("8.0")
	}
	b.WriteString(" GiB\nStorage device: dev (")
	b.WriteString(device)
	b.WriteString(")\n## Workload\nBenchmark: ")
	b.WriteString(workload)
	b.WriteString("\n")
	if deteriorated {
		b.WriteString("## IMPORTANT: performance deteriorated\n")
	}
	b.WriteString("\n## Current OPTIONS file\n```ini\nwrite_buffer_size=67108864\nmax_background_jobs=2\n```\n")
	return []llm.Message{llm.System("expert"), llm.User(b.String())}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func sterile(seed int64) *Expert {
	e := NewExpert(seed)
	e.HallucinationRate = 0
	e.DeprecatedRate = 0
	e.DangerousRate = 0
	e.FormatNoiseRate = 0
	return e
}

func TestExpertDeterministic(t *testing.T) {
	e := NewExpert(1)
	msgs := buildPrompt(1, "fillrandom", "SATA HDD", 2, 4, false)
	a, err := e.Complete(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Complete(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same prompt produced different responses")
	}
}

func TestExpertSuggestionsParseAndApply(t *testing.T) {
	e := sterile(3)
	for iter := 1; iter <= 7; iter++ {
		for _, wl := range []string{"fillrandom", "readrandom", "readrandomwriterandom", "mixgraph"} {
			resp, err := e.Complete(context.Background(), buildPrompt(iter, wl, "NVMe SSD", 4, 8, false))
			if err != nil {
				t.Fatal(err)
			}
			r := parser.Parse(resp)
			if len(r.Changes) == 0 {
				t.Fatalf("iter %d %s: no parseable changes in:\n%s", iter, wl, resp)
			}
			if len(r.Changes) > 10 {
				t.Fatalf("iter %d %s: %d changes exceeds the 10-change behaviour", iter, wl, len(r.Changes))
			}
			// Sterile expert must propose only real, valid options.
			o := lsm.DBBenchDefaults()
			for _, c := range r.Changes {
				if err := o.SetByName(c.Name, c.Value); err != nil {
					t.Fatalf("iter %d %s: bad suggestion %s=%s: %v", iter, wl, c.Name, c.Value, err)
				}
			}
		}
	}
}

func TestExpertWorkloadAwareness(t *testing.T) {
	e := sterile(3)
	read, _ := e.Complete(context.Background(), buildPrompt(1, "readrandom", "NVMe SSD", 4, 8, false))
	write, _ := e.Complete(context.Background(), buildPrompt(1, "fillrandom", "NVMe SSD", 4, 8, false))
	if !strings.Contains(read, "filter_policy") && !strings.Contains(read, "block_cache") {
		t.Fatalf("read workload advice lacks read options:\n%s", read)
	}
	if !strings.Contains(write, "wal_bytes_per_sync") && !strings.Contains(write, "max_background") {
		t.Fatalf("write workload advice lacks write options:\n%s", write)
	}
}

func TestExpertHardwareAwareness(t *testing.T) {
	e := sterile(3)
	hdd, _ := e.Complete(context.Background(), buildPrompt(1, "fillrandom", "SATA HDD", 2, 4, false))
	if !strings.Contains(hdd, "compaction_readahead_size") {
		t.Fatalf("HDD advice lacks readahead:\n%s", hdd)
	}
	// Memory-aware cache sizing: 4 GiB host gets a smaller cache than 8 GiB.
	small, _ := e.Complete(context.Background(), buildPrompt(1, "readrandom", "NVMe SSD", 4, 4, false))
	big, _ := e.Complete(context.Background(), buildPrompt(1, "readrandom", "NVMe SSD", 4, 8, false))
	cs := changeValue(t, small, "block_cache_size")
	cb := changeValue(t, big, "block_cache_size")
	if cs == "" || cb == "" || cs == cb {
		t.Fatalf("cache sizing ignores memory: 4GiB=%s 8GiB=%s", cs, cb)
	}
}

func changeValue(t *testing.T, resp, name string) string {
	t.Helper()
	for _, c := range parser.Parse(resp).Changes {
		if c.Name == name {
			return c.Value
		}
	}
	return ""
}

func TestExpertDeteriorationRecovery(t *testing.T) {
	e := sterile(3)
	resp, err := e.Complete(context.Background(), buildPrompt(4, "fillrandom", "NVMe SSD", 4, 8, true))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(resp), "revert") {
		t.Fatalf("deterioration response does not mention reverting:\n%s", resp)
	}
	r := parser.Parse(resp)
	if len(r.Changes) == 0 {
		t.Fatal("no recovery changes")
	}
}

func TestExpertFaultInjection(t *testing.T) {
	e := NewExpert(5)
	e.HallucinationRate = 1
	e.DeprecatedRate = 1
	e.DangerousRate = 1
	e.FormatNoiseRate = 0
	resp, err := e.Complete(context.Background(), buildPrompt(2, "fillrandom", "NVMe SSD", 4, 8, false))
	if err != nil {
		t.Fatal(err)
	}
	r := parser.Parse(resp)
	var hallucinated, deprecated, dangerous bool
	for _, c := range r.Changes {
		spec, ok := lsm.LookupOption(c.Name)
		switch {
		case !ok:
			hallucinated = true
		case spec.Deprecated:
			deprecated = true
		}
		for _, d := range dangerousOptions {
			if c.Name == d.name {
				dangerous = true
			}
		}
	}
	if !hallucinated || !deprecated || !dangerous {
		t.Fatalf("fault injection incomplete: hallucinated=%v deprecated=%v dangerous=%v\n%s",
			hallucinated, deprecated, dangerous, resp)
	}
}

func TestExpertFormatNoise(t *testing.T) {
	e := NewExpert(1)
	e.FormatNoiseRate = 1
	e.HallucinationRate = 0
	e.DeprecatedRate = 0
	e.DangerousRate = 0
	resp, err := e.Complete(context.Background(), buildPrompt(1, "fillrandom", "NVMe SSD", 4, 8, false))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(resp, "```") {
		t.Fatalf("format-noise response still has a code block:\n%s", resp)
	}
	// Even the sloppy format must be parseable.
	if len(parser.Parse(resp).Changes) == 0 {
		t.Fatalf("sloppy format unparseable:\n%s", resp)
	}
}

func TestExpertOscillation(t *testing.T) {
	// Across iterations 4 and 5 the expert oscillates
	// max_background_flushes (Table 5 behaviour).
	e := sterile(3)
	r4, _ := e.Complete(context.Background(), buildPrompt(4, "fillrandom", "SATA HDD", 2, 4, false))
	r5, _ := e.Complete(context.Background(), buildPrompt(5, "fillrandom", "SATA HDD", 2, 4, false))
	v4 := changeValue(t, r4, "max_background_flushes")
	v5 := changeValue(t, r5, "max_background_flushes")
	if v4 != "1" || v5 != "2" {
		t.Fatalf("oscillation missing: iter4=%q iter5=%q", v4, v5)
	}
}

func TestExpertEmptyConversation(t *testing.T) {
	e := NewExpert(1)
	if _, err := e.Complete(context.Background(), nil); err == nil {
		t.Fatal("empty conversation accepted")
	}
}

func TestExpertName(t *testing.T) {
	if NewExpert(1).Name() != "mock-gpt-4" {
		t.Fatal("unexpected name")
	}
}
