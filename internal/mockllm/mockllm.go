// Package mockllm is the offline stand-in for the GPT-4 API: a
// deterministic "LSM-KVS tuning expert" whose knowledge base is distilled
// from the RocksDB tuning guide and the option-change patterns the paper
// reports (Table 5). It reproduces the behavioural properties the paper
// attributes to the LLM:
//
//   - at most ~10 option changes per iteration;
//   - hardware awareness (cache sized from memory, background jobs from
//     cores, readahead on spinning disks);
//   - iteration-to-iteration experimentation with oscillation
//     (max_background_flushes 2 -> 1 -> 2, sync sizes halved and restored);
//   - blog-like preferences for the same well-known options;
//   - occasional hallucinated or deprecated options and occasionally
//     dangerous suggestions (disabling the WAL), exercising the Safeguard
//     Enforcer;
//   - replies in mixed natural language + config blocks in varying formats.
//
// It implements llm.Client in-process and can be served over HTTP with
// llm.ServeChat (cmd/mockllm), so the framework code path is identical to
// one talking to a real endpoint.
package mockllm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/llm"
)

// Expert is the simulated tuning model.
type Expert struct {
	// Seed perturbs rendering and experimentation deterministically.
	Seed int64
	// HallucinationRate is the probability a response includes an invented
	// option name (GPT-4-style confident nonsense). Default 0.15.
	HallucinationRate float64
	// DeprecatedRate is the probability a response includes a deprecated
	// real option (the paper notes LLMs over-focus on old options).
	DeprecatedRate float64
	// DangerousRate is the probability a response suggests a blacklisted
	// change (e.g. disabling the WAL for speed). Default 0.10.
	DangerousRate float64
	// FormatNoiseRate is the probability the response uses a sloppier
	// format (prose bullets instead of a clean ini block).
	FormatNoiseRate float64
}

// NewExpert returns an Expert with the default behaviour rates.
func NewExpert(seed int64) *Expert {
	return &Expert{
		Seed:              seed,
		HallucinationRate: 0.15,
		DeprecatedRate:    0.10,
		DangerousRate:     0.10,
		FormatNoiseRate:   0.25,
	}
}

// Name implements llm.Client.
func (e *Expert) Name() string { return "mock-gpt-4" }

// promptFeatures is what the expert extracts from the conversation, like an
// LLM attending to the relevant facts.
type promptFeatures struct {
	iteration    int
	workload     string // fillrandom, readrandom, readrandomwriterandom, mixgraph
	writeHeavy   bool
	readHeavy    bool
	cores        int
	memoryGiB    float64
	hdd          bool
	deteriorated bool
	current      map[string]string // parsed current option values
	throughput   float64
}

var (
	reIteration  = regexp.MustCompile(`(?i)iteration[:\s#]+(\d+)`)
	reCores      = regexp.MustCompile(`(?i)cpu cores?:\s*(\d+)`)
	reMemory     = regexp.MustCompile(`(?i)memory:\s*([\d.]+)\s*GiB`)
	reWorkload   = regexp.MustCompile(`(?i)workload[^\n]*?:\s*([a-z]+)`)
	reThroughput = regexp.MustCompile(`([\d.]+)\s*ops/sec`)
	reKV         = regexp.MustCompile(`(?m)^\s*([a-z_0-9]+)\s*=\s*(\S+)`)
)

// parsePrompt extracts features from the full conversation text.
func parsePrompt(msgs []llm.Message) promptFeatures {
	var all strings.Builder
	var lastUser string
	for _, m := range msgs {
		all.WriteString(m.Content)
		all.WriteString("\n")
		if m.Role == llm.RoleUser {
			lastUser = m.Content
		}
	}
	text := all.String()
	f := promptFeatures{cores: 4, memoryGiB: 8, current: map[string]string{}}
	if m := reIteration.FindStringSubmatch(lastUser); m != nil {
		f.iteration, _ = strconv.Atoi(m[1])
	}
	if m := reCores.FindStringSubmatch(text); m != nil {
		f.cores, _ = strconv.Atoi(m[1])
	}
	if m := reMemory.FindStringSubmatch(text); m != nil {
		f.memoryGiB, _ = strconv.ParseFloat(m[1], 64)
	}
	lt := strings.ToLower(text)
	switch {
	case strings.Contains(lt, "readrandomwriterandom"):
		f.workload = "readrandomwriterandom"
	case strings.Contains(lt, "mixgraph"):
		f.workload = "mixgraph"
	case strings.Contains(lt, "readrandom"):
		f.workload = "readrandom"
	case strings.Contains(lt, "fillrandom"):
		f.workload = "fillrandom"
	default:
		if m := reWorkload.FindStringSubmatch(text); m != nil {
			f.workload = strings.ToLower(m[1])
		}
	}
	switch f.workload {
	case "fillrandom":
		f.writeHeavy = true
	case "readrandom":
		f.readHeavy = true
	default:
		f.writeHeavy, f.readHeavy = true, true
	}
	f.hdd = strings.Contains(lt, "hdd") || strings.Contains(lt, "spinning")
	f.deteriorated = strings.Contains(lt, "deteriorat") || strings.Contains(strings.ToLower(lastUser), "regressed") ||
		strings.Contains(strings.ToLower(lastUser), "got worse")
	if ms := reThroughput.FindAllStringSubmatch(lastUser, -1); len(ms) > 0 {
		f.throughput, _ = strconv.ParseFloat(ms[len(ms)-1][1], 64)
	}
	// Current option values: last occurrence wins (the options file is the
	// last big key=value region in the prompt).
	for _, m := range reKV.FindAllStringSubmatch(text, -1) {
		f.current[m[1]] = m[2]
	}
	return f
}

// suggestion is one proposed option change with its natural-language
// justification.
type suggestion struct {
	name, value, why string
}

// rngFor derives the deterministic generator for one response.
func (e *Expert) rngFor(f promptFeatures) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%d|%.0f|%v|%v",
		e.Seed, f.iteration, f.workload, f.cores, f.memoryGiB, f.hdd, f.deteriorated)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Complete implements llm.Client.
func (e *Expert) Complete(_ context.Context, msgs []llm.Message) (string, error) {
	if len(msgs) == 0 {
		return "", fmt.Errorf("mockllm: empty conversation")
	}
	f := parsePrompt(msgs)
	rng := e.rngFor(f)
	var sugg []suggestion
	if f.deteriorated {
		sugg = e.recoverySuggestions(f, rng)
	} else {
		sugg = e.playbook(f, rng)
	}
	sugg = dedupeAgainstCurrent(sugg, f, rng)
	// The paper observes >10 changes per iteration stops helping; the
	// model itself tends to propose a handful.
	if len(sugg) > 10 {
		sugg = sugg[:10]
	}
	e.injectFaults(&sugg, f, rng)
	return e.render(f, sugg, rng), nil
}

// mb returns n mebibytes in bytes as a decimal string.
func mb(n int64) string { return strconv.FormatInt(n<<20, 10) }

// playbook builds the iteration's suggestions from the knowledge base.
func (e *Expert) playbook(f promptFeatures, rng *rand.Rand) []suggestion {
	jobs := 4
	if f.cores <= 2 {
		jobs = 3
	}
	cacheMB := int64(f.memoryGiB * 1024 / 4) // 25% of RAM, blog-standard advice
	if cacheMB < 64 {
		cacheMB = 64
	}
	var s []suggestion
	add := func(name, value, why string) { s = append(s, suggestion{name, value, why}) }

	switch it := f.iteration; {
	case it <= 1:
		// The jumpstart: the well-known first-page-of-the-tuning-guide
		// changes, tailored to hardware.
		if f.writeHeavy {
			add("max_background_flushes", "2", "dedicated flush threads prevent memtable pileups")
			add("max_background_jobs", strconv.Itoa(jobs), fmt.Sprintf("use the %d cores for background work", f.cores))
			add("wal_bytes_per_sync", "1048576", "smooth WAL writeback to avoid periodic stalls")
			add("bytes_per_sync", "1048576", "smooth SST writeback the same way")
			add("max_write_buffer_number", "3", "absorb write bursts while flushes run")
		}
		if f.readHeavy {
			add("filter_policy", "bloomfilter:10:false", "bloom filters avoid reading SSTs that cannot hold the key")
			add("block_cache_size", mb(cacheMB), fmt.Sprintf("use ~25%% of the %.0f GiB RAM for hot blocks", f.memoryGiB))
			add("use_direct_io_for_flush_and_compaction", "true", "stop compactions from evicting hot pages")
		}
		if f.hdd {
			add("compaction_readahead_size", "4194304", "large readahead keeps compaction sequential on spinning disks")
		}
	case it == 2:
		if f.writeHeavy {
			add("max_background_compactions", strconv.Itoa(jobs-1), "keep compaction ahead of incoming writes")
			add("min_write_buffer_number_to_merge", "2", "merge memtables before flushing to write fewer L0 files")
			add("level0_file_num_compaction_trigger", "6", "let L0 batch a little more before compacting")
		}
		if f.readHeavy {
			add("cache_index_and_filter_blocks", "true", "account index/filter memory in the block cache")
			add("level_compaction_dynamic_level_bytes", "true", "stabilize level shape for reads")
		}
		if f.memoryGiB <= 4 && f.writeHeavy {
			add("write_buffer_size", "33554432", "halve the memtable so total memory stays in the 4 GiB budget")
			add("target_file_size_base", "33554432", "match SST size to the smaller memtable")
		}
	case it == 3:
		if f.writeHeavy {
			add("strict_bytes_per_sync", "true", "bound the writeback backlog strictly for tail latency")
			add("max_bytes_for_level_multiplier", "8", "a gentler level fan-out reduces compaction spikes")
		}
		if f.readHeavy {
			add("block_cache_size", mb(cacheMB*2), "grow the cache further; reads still miss")
			add("optimize_filters_for_hits", "true", "skip last-level filters for keys that mostly exist")
		}
		add("enable_pipelined_write", "false", "pipelined writes add overhead at this thread count")
		add("dump_malloc_stats", "false", "stop paying for allocator introspection")
	case it == 4:
		// Experimentation: the model second-guesses earlier choices
		// (Table 5's oscillations).
		if f.writeHeavy {
			add("max_background_flushes", "1", "try freeing a thread for compactions")
			add("wal_bytes_per_sync", "524288", "try a smaller sync window for smoother writeback")
			add("bytes_per_sync", "524288", "match the WAL sync window")
			add("max_background_compactions", strconv.Itoa(jobs), "compactions are the bottleneck now")
		}
		if f.readHeavy {
			add("max_open_files", "-1", "keep every table open; avoid table-cache churn")
		}
	case it == 5:
		if f.writeHeavy {
			add("max_background_flushes", "2", "reverting: one flush thread was not enough")
			add("wal_bytes_per_sync", "1048576", "restore the larger sync window")
			add("bytes_per_sync", "1048576", "restore the larger sync window")
			add("max_write_buffer_number", strconv.Itoa(3+rng.Intn(2)), "more buffers absorb flush latency")
		}
		if f.readHeavy {
			add("compaction_readahead_size", "2097152", "standard readahead is enough on this device")
		}
	case it == 6:
		if f.writeHeavy {
			add("min_write_buffer_number_to_merge", "3", "merge even more memtables per flush")
			add("max_write_buffer_number", "6", "needed so three memtables can accumulate")
			add("max_background_jobs", strconv.Itoa(jobs+1), "squeeze one more background slot")
		}
		if f.readHeavy {
			add("block_cache_size", mb(cacheMB*2), "hold the larger cache")
		}
	default:
		// Late iterations: diminishing returns, small perturbations.
		if f.writeHeavy {
			add("max_background_compactions", strconv.Itoa(jobs-1), "rebalance compaction threads")
			add("level0_slowdown_writes_trigger", "24", "tolerate slightly more L0 before throttling")
		}
		if f.readHeavy {
			add("whole_key_filtering", "true", "confirm whole-key blooms for point gets")
		}
		add("target_file_size_base", pick(rng, "33554432", "67108864"), "explore SST sizing")
	}
	return s
}

// recoverySuggestions responds to a deterioration notice: revert a couple
// of risky knobs toward safe values, then keep experimenting with the
// current iteration's playbook (the paper's model does not stop exploring
// after a bad round — Table 5 keeps oscillating through iteration 7).
func (e *Expert) recoverySuggestions(f promptFeatures, rng *rand.Rand) []suggestion {
	var s []suggestion
	add := func(name, value, why string) { s = append(s, suggestion{name, value, why}) }
	add("max_background_flushes", "2", "restore dedicated flush capacity")
	add("wal_bytes_per_sync", "1048576", "return to the sync window that worked")
	add("bytes_per_sync", "1048576", "return to the sync window that worked")
	if f.writeHeavy {
		add("max_write_buffer_number", "3", "a moderate buffer count was more stable")
		add("min_write_buffer_number_to_merge", "1", "merge-on-flush may have delayed flushes too long")
	}
	if f.readHeavy {
		add("block_cache_size", mb(int64(f.memoryGiB*1024/4)), "keep the cache at a quarter of memory")
	}
	// Continue exploring: fold in this iteration's fresh ideas, skipping
	// names the recovery already pinned.
	pinned := map[string]bool{}
	for _, sg := range s {
		pinned[sg.name] = true
	}
	for _, sg := range e.playbook(f, rng) {
		if !pinned[sg.name] {
			pinned[sg.name] = true
			s = append(s, sg)
		}
	}
	return s
}

// dedupeAgainstCurrent drops suggestions equal to the live value — most of
// the time. Real LLMs re-suggest current values now and then; keeping a few
// of those exercises the framework's no-op handling.
func dedupeAgainstCurrent(s []suggestion, f promptFeatures, rng *rand.Rand) []suggestion {
	out := s[:0]
	for _, sg := range s {
		if cur, ok := f.current[sg.name]; ok && cur == sg.value && rng.Float64() < 0.8 {
			continue
		}
		out = append(out, sg)
	}
	return out
}

// Fault catalogs.
var hallucinatedOptions = []suggestion{
	{"flush_job_count", "4", "more flush jobs increase ingest speed"},
	{"memtable_flush_speed", "fast", "prioritize flushing under write load"},
	{"level0_compaction_speed", "aggressive", "drain L0 faster"},
	{"background_thread_priority", "high", "boost background threads"},
	{"write_amp_limit", "8", "bound write amplification"},
	{"auto_tune_compaction", "true", "let RocksDB self-tune compactions"},
}

var deprecatedOptions = []suggestion{
	{"max_mem_compaction_level", "2", "push memtable output deeper"},
	{"rate_limit_delay_max_milliseconds", "100", "cap rate-limit delays"},
	{"purge_redundant_kvs_while_flush", "true", "drop redundant keys during flush"},
	{"db_stats_log_interval", "600", "log statistics periodically"},
}

var dangerousOptions = []suggestion{
	{"disable_wal", "true", "skipping the write-ahead log removes write overhead entirely"},
	{"use_fsync", "false", "avoid fsync costs"},
	{"paranoid_checks", "false", "skip checksum verification for speed"},
	{"avoid_flush_during_shutdown", "true", "close faster by skipping the final flush"},
}

// injectFaults adds the hallucination/deprecated/dangerous behaviours.
func (e *Expert) injectFaults(s *[]suggestion, f promptFeatures, rng *rand.Rand) {
	if rng.Float64() < e.HallucinationRate {
		*s = append(*s, hallucinatedOptions[rng.Intn(len(hallucinatedOptions))])
	}
	if rng.Float64() < e.DeprecatedRate {
		*s = append(*s, deprecatedOptions[rng.Intn(len(deprecatedOptions))])
	}
	if f.writeHeavy && rng.Float64() < e.DangerousRate {
		*s = append(*s, dangerousOptions[rng.Intn(len(dangerousOptions))])
	}
}

func pick(rng *rand.Rand, vals ...string) string { return vals[rng.Intn(len(vals))] }

// sectionFor places an option name in its OPTIONS-file section for clean
// ini rendering (mirrors the real file layout closely enough).
func sectionFor(name string) string {
	switch name {
	case "write_buffer_size", "max_write_buffer_number", "min_write_buffer_number_to_merge",
		"level0_file_num_compaction_trigger", "level0_slowdown_writes_trigger",
		"level0_stop_writes_trigger", "target_file_size_base", "max_bytes_for_level_base",
		"max_bytes_for_level_multiplier", "level_compaction_dynamic_level_bytes",
		"compaction_style", "compression", "optimize_filters_for_hits",
		"min_write_buffer_number", "max_mem_compaction_level",
		"purge_redundant_kvs_while_flush", "rate_limit_delay_max_milliseconds":
		return `CFOptions "default"`
	case "block_cache_size", "filter_policy", "cache_index_and_filter_blocks",
		"whole_key_filtering", "block_size", "no_block_cache":
		return `TableOptions/BlockBasedTable "default"`
	default:
		return "DBOptions"
	}
}

// render produces the assistant's natural-language + config reply in one of
// several formats (the Option Evaluator must cope with all of them).
func (e *Expert) render(f promptFeatures, sugg []suggestion, rng *rand.Rand) string {
	var b strings.Builder
	intro := []string{
		"Based on the hardware and workload characteristics you shared, here is my recommended configuration update.",
		"Looking at the benchmark output and system profile, several options stand out as worth adjusting.",
		"Given the current performance numbers, I suggest the following targeted changes.",
	}
	fmt.Fprintf(&b, "%s\n\n", intro[rng.Intn(len(intro))])
	if f.deteriorated {
		b.WriteString("Since the last change set degraded performance, I am reverting the risky knobs toward the previously stable values.\n\n")
	}
	if len(sugg) == 0 {
		b.WriteString("The current configuration already reflects my recommendations; I would keep it as is and re-run the benchmark to confirm stability.\n")
		return b.String()
	}
	for _, sg := range sugg {
		fmt.Fprintf(&b, "- `%s`: %s.\n", sg.name, sg.why)
	}
	b.WriteString("\n")
	if rng.Float64() < e.FormatNoiseRate {
		// Sloppy format: bullets with inline values, no ini block.
		b.WriteString("Set the options as follows:\n\n")
		for _, sg := range sugg {
			fmt.Fprintf(&b, "* set %s = %s\n", sg.name, sg.value)
		}
		b.WriteString("\nRe-run the benchmark and share the results so I can refine further.\n")
		return b.String()
	}
	// Clean format: an ini block grouped into sections.
	b.WriteString("Updated option file snippet:\n\n```ini\n")
	bySection := map[string][]suggestion{}
	var order []string
	for _, sg := range sugg {
		sec := sectionFor(sg.name)
		if _, ok := bySection[sec]; !ok {
			order = append(order, sec)
		}
		bySection[sec] = append(bySection[sec], sg)
	}
	for _, sec := range order {
		fmt.Fprintf(&b, "[%s]\n", sec)
		for _, sg := range bySection[sec] {
			fmt.Fprintf(&b, "  %s=%s\n", sg.name, sg.value)
		}
	}
	b.WriteString("```\n\nApply these and run the benchmark again; I will adjust based on the new numbers.\n")
	return b.String()
}
