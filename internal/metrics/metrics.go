// Package metrics exports engine observability — tickers, latency
// histograms, level/compaction gauges and PerfContext/IOStatsContext
// counters — in the Prometheus text exposition format over plain net/http
// (stdlib-only, no client library).
//
// The Exporter's source is swappable at runtime because the tuning loop
// opens a fresh database per iteration: callers point the exporter at each
// new DB as it opens (see experiments.Config.OnDB) and /metrics always
// reflects the live engine.
//
// Serve also mounts the stdlib pprof handlers on the same mux, so the
// -metrics_addr endpoint doubles as a live profiling port:
//
//	/metrics               Prometheus text exposition
//	/debug/pprof/          pprof index (goroutine, heap, allocs, ...)
//	/debug/pprof/profile   30s CPU profile
//	/debug/pprof/trace     execution trace
package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/lsm"
)

// Source is the engine surface the exporter scrapes. *lsm.DB implements it.
type Source interface {
	Statistics() *lsm.Statistics
	Histograms() *lsm.HistogramStats
	GetMetrics() lsm.Metrics
}

// Exporter serves Prometheus text-format metrics for a swappable Source.
// The zero value is usable (serves only a comment until Set is called).
type Exporter struct {
	src   atomic.Value // Source
	extra atomic.Value // func(io.Writer)
}

// SetExtra installs an additional collector rendered after the engine
// metrics on every scrape — the kvserver mounts its request/latency/
// connection gauges here so one /metrics endpoint covers engine and server.
func (e *Exporter) SetExtra(fn func(w io.Writer)) {
	if fn != nil {
		e.extra.Store(fn)
	}
}

// NewExporter returns an exporter, optionally pre-bound to a source.
func NewExporter(src Source) *Exporter {
	e := &Exporter{}
	if src != nil {
		e.Set(src)
	}
	return e
}

// Set points the exporter at a (new) engine. Safe to call concurrently with
// scrapes; used by the tuning loop each time an iteration opens a fresh DB.
func (e *Exporter) Set(src Source) {
	if src != nil {
		e.src.Store(&src)
	}
}

// sanitize maps RocksDB dotted names to Prometheus metric names.
func sanitize(name string) string {
	return strings.NewReplacer(".", "_", "-", "_").Replace(name)
}

// ServeHTTP implements http.Handler with the text exposition format.
func (e *Exporter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p, _ := e.src.Load().(*Source)
	var b strings.Builder
	if p == nil {
		fmt.Fprintln(&b, "# no engine attached yet")
	} else {
		src := *p
		writeTickers(&b, src.Statistics())
		writeHistograms(&b, src.Histograms())
		writeGauges(&b, src.GetMetrics())
		writePerf(&b, src)
	}
	if fn, _ := e.extra.Load().(func(w io.Writer)); fn != nil {
		fn(&b)
	}
	w.Write([]byte(b.String()))
}

// writePerf emits PerfContext and IOStatsContext counters when the source
// exposes them (*lsm.DB does); at perf_level=disable they all read 0.
func writePerf(b *strings.Builder, src Source) {
	type perfSource interface {
		PerfContext() *lsm.PerfContext
		IOStats() *lsm.IOStatsContext
	}
	ps, ok := src.(perfSource)
	if !ok {
		return
	}
	emit := func(prefix string, snap map[string]int64) {
		names := make([]string, 0, len(snap))
		for k := range snap {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			name := prefix + sanitize(k)
			fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", name, name, snap[k])
		}
	}
	emit("lsm_perf_", ps.PerfContext().Snapshot())
	emit("lsm_iostats_", ps.IOStats().Snapshot())
}

// writeTickers emits every ticker (including zeros) as a counter, sorted by
// name so scrapes are stable.
func writeTickers(b *strings.Builder, stats *lsm.Statistics) {
	type kv struct {
		name  string
		value int64
	}
	var all []kv
	stats.Each(func(name string, v int64) { all = append(all, kv{sanitize(name), v}) })
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	for _, t := range all {
		fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", t.name, t.name, t.value)
	}
}

// writeHistograms emits each non-empty histogram as a Prometheus summary:
// quantile series plus _sum and _count.
func writeHistograms(b *strings.Builder, hists *lsm.HistogramStats) {
	for _, d := range hists.Snapshot() {
		name := sanitize(d.Name)
		fmt.Fprintf(b, "# TYPE %s summary\n", name)
		fmt.Fprintf(b, "%s{quantile=\"0.5\"} %g\n", name, d.P50)
		fmt.Fprintf(b, "%s{quantile=\"0.95\"} %g\n", name, d.P95)
		fmt.Fprintf(b, "%s{quantile=\"0.99\"} %g\n", name, d.P99)
		fmt.Fprintf(b, "%s_sum %d\n", name, d.Sum)
		fmt.Fprintf(b, "%s_count %d\n", name, d.Count)
	}
}

// writeGauges emits point-in-time engine state.
func writeGauges(b *strings.Builder, m lsm.Metrics) {
	gauge := func(name string, v float64) {
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %g\n", name, name, v)
	}
	gauge("lsm_memtable_bytes", float64(m.MemtableBytes))
	gauge("lsm_immutable_memtables", float64(m.ImmutableCount))
	gauge("lsm_pending_compaction_bytes", float64(m.PendingCompactionBytes))
	gauge("lsm_block_cache_used_bytes", float64(m.BlockCacheUsed))
	gauge("lsm_running_flushes", float64(m.RunningFlushes))
	gauge("lsm_running_compactions", float64(m.RunningCompactions))
	gauge("lsm_total_sst_bytes", float64(m.TotalSSTBytes))
	gauge("lsm_stats_history_snapshots", float64(m.StatsHistoryCount))
	gauge("lsm_stats_history_bytes", float64(m.StatsHistoryBytes))
	fmt.Fprintf(b, "# TYPE lsm_level_files gauge\n")
	for l, n := range m.LevelFiles {
		fmt.Fprintf(b, "lsm_level_files{level=\"%d\"} %d\n", l, n)
	}
	fmt.Fprintf(b, "# TYPE lsm_level_bytes gauge\n")
	for l, n := range m.LevelBytes {
		fmt.Fprintf(b, "lsm_level_bytes{level=\"%d\"} %d\n", l, n)
	}
}

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0") and serves /metrics in a
// background goroutine. It returns the bound address (useful with port 0)
// and the server for shutdown.
func Serve(addr string, e *Exporter) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", e)
	// Live profiling rides the metrics port (the DefaultServeMux pprof
	// registrations do not apply to a private mux).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv, nil
}
