package metrics

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/lsm"
)

func openBenchDB(t *testing.T) *lsm.DB {
	t.Helper()
	env := lsm.NewSimEnv(device.NVMe(), device.Profile4C8G(), 42)
	opts := lsm.DefaultOptions()
	opts.Env = env
	opts.Stats = lsm.NewStatistics()
	opts.WriteBufferSize = 64 << 10
	opts.TargetFileSizeBase = 64 << 10
	opts.MaxBytesForLevelBase = 256 << 10
	opts.BlockSize = 1024
	db, err := lsm.Open("/metrics-db", opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	return string(body)
}

// seriesCount counts exposition sample lines (non-comment, non-blank).
func seriesCount(body string) int {
	n := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n++
	}
	return n
}

func TestExporterServesEngineMetrics(t *testing.T) {
	db := openBenchDB(t)
	defer db.Close()
	wo := lsm.DefaultWriteOptions()
	for i := 0; i < 5000; i++ {
		db.Put(wo, []byte(fmt.Sprintf("k%05d", i)), make([]byte, 128))
	}
	db.Flush()
	db.WaitForBackgroundIdle()
	ro := lsm.DefaultReadOptions()
	for i := 0; i < 2000; i++ {
		db.Get(ro, []byte(fmt.Sprintf("k%05d", i)))
	}

	body := scrape(t, NewExporter(db))
	// The ISSUE's acceptance bar: a live engine exposes >= 25 series.
	if n := seriesCount(body); n < 25 {
		t.Fatalf("series count = %d, want >= 25:\n%s", n, body)
	}
	for _, want := range []string{
		"rocksdb_flush_count ",
		"rocksdb_block_cache_hit ",
		"rocksdb_table_cache_hit ",
		"rocksdb_db_get_micros{quantile=\"0.99\"}",
		"rocksdb_db_write_micros_count ",
		"lsm_total_sst_bytes ",
		"lsm_level_files{level=\"0\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing series %q in:\n%s", want, body)
		}
	}
	// Zero-valued tickers must still be present (stable series set).
	if !strings.Contains(body, "rocksdb_stall_micros ") {
		t.Errorf("zero ticker not exported:\n%s", body)
	}
}

func TestExporterNoSourceAndSwap(t *testing.T) {
	e := NewExporter(nil)
	body := scrape(t, e)
	if seriesCount(body) != 0 {
		t.Fatalf("detached exporter served series:\n%s", body)
	}
	db := openBenchDB(t)
	defer db.Close()
	e.Set(db)
	body = scrape(t, e)
	if seriesCount(body) == 0 {
		t.Fatal("no series after Set")
	}
}

func TestServeBindsAndServes(t *testing.T) {
	db := openBenchDB(t)
	defer db.Close()
	addr, srv, err := Serve("127.0.0.1:0", NewExporter(db))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if seriesCount(string(body)) == 0 {
		t.Fatalf("no series from live server:\n%s", body)
	}
}
