package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/lsm"
)

// testCfg is small/fast: 1/800 of the paper's ops.
func testCfg() Config {
	return Config{Scale: 800, Seed: 9, MaxIterations: 2}
}

func TestPaperOps(t *testing.T) {
	fr, rrReads, rrPreload, rrwr, mix := PaperOps(50)
	if fr != 1_000_000 || rrReads != 200_000 || rrPreload != 500_000 || rrwr != 500_000 || mix != 500_000 {
		t.Fatalf("PaperOps(50) = %d %d %d %d %d", fr, rrReads, rrPreload, rrwr, mix)
	}
}

func TestWorkloadSpecs(t *testing.T) {
	cfg := testCfg().withDefaults()
	for _, name := range Workloads() {
		s, err := workloadSpec(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if workloadDescription(name) == name {
			t.Errorf("%s: missing workload description", name)
		}
	}
	if _, err := workloadSpec("nope", cfg); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunSessionQuick(t *testing.T) {
	s, err := RunSession(context.Background(), device.NVMe(), device.Profile4C4G(), "fillrandom", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 { // baseline + 2 iterations
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].Iteration != 0 || !s.Points[0].Kept {
		t.Fatalf("baseline point wrong: %+v", s.Points[0])
	}
	if s.TunedMetrics().Throughput < s.DefaultMetrics().Throughput {
		t.Fatal("tuned below default: flagger failed")
	}
	if s.Device != "NVMe SSD" || s.Profile != "4CPU+4GiB" {
		t.Fatalf("labels: %q %q", s.Device, s.Profile)
	}
}

func TestFormatTables(t *testing.T) {
	s, err := RunSession(context.Background(), device.NVMe(), device.Profile2C4G(), "fillrandom", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	sessions := []*Session{s}
	t1 := FormatTable1(sessions)
	if !strings.Contains(t1, "Table 1") || !strings.Contains(t1, "Default") || !strings.Contains(t1, "Tuned") {
		t.Fatalf("table 1:\n%s", t1)
	}
	if !strings.Contains(FormatTable2(sessions), "p99 Latency") {
		t.Fatal("table 2 header")
	}
	if !strings.Contains(FormatTable3(sessions), "FR") {
		t.Fatal("table 3 workload column")
	}
	if !strings.Contains(FormatTable4(sessions), "Workload") {
		t.Fatal("table 4 header")
	}
	fig := FormatFigure("Figure X", sessions)
	for _, want := range []string{"(a) Throughput", "(b) P99 Latency Write", "(c) P99 Latency Read", "iter0"} {
		if !strings.Contains(fig, want) {
			t.Fatalf("figure missing %q:\n%s", want, fig)
		}
	}
	csv := CSVFigure(sessions)
	if !strings.HasPrefix(csv, "workload,iteration,") || strings.Count(csv, "\n") != len(s.Points)+1 {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestOptionTrajectory(t *testing.T) {
	s, err := RunSession(context.Background(), device.SATAHDD(), device.Profile2C4G(), "fillrandom", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	tr := OptionTrajectory(s)
	if len(tr.Options) == 0 {
		t.Fatal("no options changed across a tuning session")
	}
	if len(tr.ByIteration) != len(s.Result.Iterations) {
		t.Fatalf("iterations: %d vs %d", len(tr.ByIteration), len(s.Result.Iterations))
	}
	for _, name := range tr.Options {
		if tr.Defaults[name] == "" && name != "wal_dir" {
			t.Errorf("option %s has no default recorded", name)
		}
	}
	out := FormatTable5(tr)
	if !strings.Contains(out, "Table 5") || !strings.Contains(out, tr.Options[0]) {
		t.Fatalf("table 5:\n%s", out)
	}
}

func TestParseDiffLine(t *testing.T) {
	name, oldV, newV, ok := parseDiffLine("DBOptions.max_background_jobs: 2 -> 4")
	if !ok || name != "max_background_jobs" || oldV != "2" || newV != "4" {
		t.Fatalf("parseDiffLine = %q %q %q %v", name, oldV, newV, ok)
	}
	if _, _, _, ok := parseDiffLine("garbage"); ok {
		t.Fatal("garbage parsed")
	}
}

func TestHostMonitorUnscaled(t *testing.T) {
	h := &HostMonitor{Device: device.NVMe(), Profile: device.Profile4C8G()}
	info := h.Host()
	if info.MemoryBytes != 8*device.GiB || info.CPUs != 4 {
		t.Fatalf("host info scaled or wrong: %+v", info)
	}
	if info.Storage.Kind != "NVMe SSD" {
		t.Fatalf("storage kind = %q", info.Storage.Kind)
	}
	_ = h.Sample()
}

func TestSimRunnerScalesOptions(t *testing.T) {
	r := &SimRunner{Device: device.NVMe(), Profile: device.Profile4C4G(), Workload: "fillrandom", Cfg: testCfg().withDefaults()}
	// An unscaled 64MB write buffer at scale 800 must shrink to the floor.
	rep, err := r.RunBenchmark(lsm.DBBenchDefaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 62500 ops x ~420B = 26MB written; with the scaled (80KiB) buffer the
	// engine must have flushed many times.
	if rep.Stats["rocksdb.flush.count"] < 10 {
		t.Fatalf("only %d flushes: option scaling ineffective", rep.Stats["rocksdb.flush.count"])
	}
}

func TestHDDWorkloadSweepSkipsReadrandom(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testCfg()
	cfg.MaxIterations = 1
	sessions, err := WorkloadSweep(context.Background(), device.SATAHDD(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		if s.Workload == "readrandom" {
			t.Fatal("readrandom must be omitted on HDD (paper discards it)")
		}
	}
	if len(sessions) != 3 {
		t.Fatalf("sessions = %d, want 3", len(sessions))
	}
}
