package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/device"
)

// HardwareSweep reproduces Tables 1 and 2: fillrandom on NVMe SSD across
// the four hardware profiles, default vs tuned.
func HardwareSweep(ctx context.Context, cfg Config) ([]*Session, error) {
	cfg = cfg.withDefaults()
	var out []*Session
	for _, prof := range device.AllProfiles() {
		s, err := RunSession(ctx, device.NVMe(), prof, "fillrandom", cfg)
		if err != nil {
			return out, fmt.Errorf("hardware sweep %s: %w", prof.Name, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// Workloads lists the paper's four benchmarks in table order.
func Workloads() []string {
	return []string{"fillrandom", "readrandom", "readrandomwriterandom", "mixgraph"}
}

// WorkloadSweep reproduces Tables 3/4 (on NVMe) and the per-iteration
// Figures 3/4 series (on either device): every workload on 4 CPU + 4 GiB.
// On HDD, readrandom is skipped, matching the paper ("results discarded;
// throughput <10 ops/sec with tests timing out").
func WorkloadSweep(ctx context.Context, dev *device.Model, cfg Config) ([]*Session, error) {
	cfg = cfg.withDefaults()
	var out []*Session
	for _, wl := range Workloads() {
		if dev.Kind == device.KindHDD && wl == "readrandom" {
			continue
		}
		s, err := RunSession(ctx, dev, device.Profile4C4G(), wl, cfg)
		if err != nil {
			return out, fmt.Errorf("workload sweep %s: %w", wl, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// FigureWorkloads lists the workloads plotted in Figures 3 and 4.
func FigureWorkloads() []string {
	return []string{"fillrandom", "mixgraph", "readrandomwriterandom"}
}

// FormatTable1 renders the hardware sweep as the paper's Table 1
// (throughput, ops/sec).
func FormatTable1(sessions []*Session) string {
	return formatHardwareTable(sessions,
		"Table 1. Varying Hardware Configurations for Fillrandom on NVMe SSD - Throughput (ops/sec)",
		func(s *Session) (float64, float64) {
			return s.DefaultMetrics().Throughput, s.TunedMetrics().Throughput
		}, "%8.0f")
}

// FormatTable2 renders the hardware sweep as the paper's Table 2 (p99
// latency, microseconds; fillrandom is write-only so the write p99).
func FormatTable2(sessions []*Session) string {
	return formatHardwareTable(sessions,
		"Table 2. Varying Hardware Configurations for Fillrandom on NVMe SSD - p99 Latency (us)",
		func(s *Session) (float64, float64) {
			tuned := bestKeptP99Write(s)
			return s.DefaultMetrics().P99Write, tuned
		}, "%8.2f")
}

// bestKeptP99Write returns the write p99 of the best kept iteration (the
// tuned configuration's latency).
func bestKeptP99Write(s *Session) float64 {
	return s.TunedMetrics().P99Write
}

func formatHardwareTable(sessions []*Session, title string, cell func(*Session) (float64, float64), numFmt string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString(strings.Repeat("-", len(title)) + "\n")
	b.WriteString("Config   |")
	for _, s := range sessions {
		fmt.Fprintf(&b, " %8s |", shortProfile(s.Profile))
	}
	b.WriteString("\nDefault  |")
	for _, s := range sessions {
		d, _ := cell(s)
		fmt.Fprintf(&b, " "+numFmt+" |", d)
	}
	b.WriteString("\nTuned    |")
	for _, s := range sessions {
		_, t := cell(s)
		fmt.Fprintf(&b, " "+numFmt+" |", t)
	}
	b.WriteString("\n")
	return b.String()
}

func shortProfile(p string) string {
	p = strings.ReplaceAll(p, "CPU", "")
	p = strings.ReplaceAll(p, "GiB", "")
	return p
}

func shortWorkload(w string) string {
	switch w {
	case "fillrandom":
		return "FR"
	case "readrandom":
		return "RR"
	case "readrandomwriterandom":
		return "RRWR"
	case "mixgraph":
		return "Mixgraph"
	default:
		return w
	}
}

// FormatTable3 renders the workload sweep (NVMe, 4+4) as the paper's Table
// 3 (throughput).
func FormatTable3(sessions []*Session) string {
	var b strings.Builder
	title := "Table 3. Varying Workloads with 4CPUs & 4GiB RAM on NVMe SSD - Throughput (ops/sec)"
	b.WriteString(title + "\n")
	b.WriteString(strings.Repeat("-", len(title)) + "\n")
	b.WriteString("Config   |")
	for _, s := range sessions {
		fmt.Fprintf(&b, " %10s |", shortWorkload(s.Workload))
	}
	b.WriteString("\nDefault  |")
	for _, s := range sessions {
		fmt.Fprintf(&b, " %10.0f |", s.DefaultMetrics().Throughput)
	}
	b.WriteString("\nTuned    |")
	for _, s := range sessions {
		fmt.Fprintf(&b, " %10.0f |", s.TunedMetrics().Throughput)
	}
	b.WriteString("\n")
	return b.String()
}

// FormatTable4 renders the workload sweep as the paper's Table 4 (p99
// latency, split into write/read sides for the mixed workloads).
func FormatTable4(sessions []*Session) string {
	var b strings.Builder
	title := "Table 4. Varying Workloads with 4CPUs & 4GiB RAM on NVMe SSD - p99 Latency (us)"
	b.WriteString(title + "\n")
	b.WriteString(strings.Repeat("-", len(title)) + "\n")
	render := func(label string, get func(*Session) (float64, float64)) {
		fmt.Fprintf(&b, "%-8s |", label)
		for _, s := range sessions {
			w, r := get(s)
			switch {
			case w > 0 && r > 0:
				fmt.Fprintf(&b, " (W) %9.2f (R) %9.2f |", w, r)
			case r > 0:
				fmt.Fprintf(&b, " %23.2f |", r)
			default:
				fmt.Fprintf(&b, " %23.2f |", w)
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-8s |", "Workload")
	for _, s := range sessions {
		fmt.Fprintf(&b, " %23s |", shortWorkload(s.Workload))
	}
	b.WriteString("\n")
	render("Default", func(s *Session) (float64, float64) {
		return s.DefaultMetrics().P99Write, s.DefaultMetrics().P99Read
	})
	render("Tuned", func(s *Session) (float64, float64) {
		return s.TunedMetrics().P99Write, s.TunedMetrics().P99Read
	})
	return b.String()
}

// Trajectory reproduces Table 5: the per-iteration values of every option
// the LLM changed during a session (fillrandom, SATA HDD, 2 CPU + 4 GiB in
// the paper). Cells are filled only at iterations where the option changed,
// like the paper's table.
type Trajectory struct {
	Options     []string            // row order: first-changed first
	Defaults    map[string]string   // value before the first change
	ByIteration []map[string]string // index 0 = iteration 1
}

// OptionTrajectory extracts Table 5 from a session's applied diffs. Each
// ini.Diff line has the form "Section.name: old -> new".
func OptionTrajectory(s *Session) *Trajectory {
	tr := &Trajectory{Defaults: map[string]string{}}
	seen := map[string]bool{}
	for _, it := range s.Result.Iterations {
		row := map[string]string{}
		for _, d := range it.AppliedDiff {
			name, oldV, newV, ok := parseDiffLine(d)
			if !ok {
				continue
			}
			if !seen[name] {
				seen[name] = true
				tr.Options = append(tr.Options, name)
				tr.Defaults[name] = oldV
			}
			row[name] = newV
		}
		tr.ByIteration = append(tr.ByIteration, row)
	}
	return tr
}

// parseDiffLine splits "Section.name: old -> new".
func parseDiffLine(d string) (name, oldV, newV string, ok bool) {
	colon := strings.Index(d, ": ")
	arrow := strings.Index(d, " -> ")
	if colon < 0 || arrow < colon {
		return "", "", "", false
	}
	key := d[:colon]
	if dot := strings.LastIndexByte(key, '.'); dot >= 0 {
		key = key[dot+1:]
	}
	return key, d[colon+2 : arrow], d[arrow+4:], true
}

// FormatTable5 renders the trajectory like the paper's Table 5.
func FormatTable5(tr *Trajectory) string {
	var b strings.Builder
	title := "Table 5. Changes in options over iterations by LLM"
	b.WriteString(title + "\n")
	b.WriteString(strings.Repeat("-", len(title)) + "\n")
	fmt.Fprintf(&b, "%-36s | %-12s |", "Parameter", "Default")
	for i := range tr.ByIteration {
		fmt.Fprintf(&b, " Iter %-7d |", i+1)
	}
	b.WriteString("\n")
	for _, name := range tr.Options {
		fmt.Fprintf(&b, "%-36s | %-12s |", name, clip(tr.Defaults[name], 12))
		for _, row := range tr.ByIteration {
			fmt.Fprintf(&b, " %-12s |", clip(row[name], 12))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s
}

// FormatFigure renders a figure's three panels (throughput, p99 write, p99
// read) as aligned text series, one row per workload, one column per
// iteration — the data behind the paper's bar charts.
func FormatFigure(title string, sessions []*Session) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString(strings.Repeat("=", len(title)) + "\n")
	panel := func(name string, get func(IterPoint) float64, format string) {
		fmt.Fprintf(&b, "%s\n", name)
		fmt.Fprintf(&b, "  %-10s |", "workload")
		n := 0
		for _, s := range sessions {
			if len(s.Points) > n {
				n = len(s.Points)
			}
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, " iter%-6d|", i)
		}
		b.WriteString("\n")
		for _, s := range sessions {
			fmt.Fprintf(&b, "  %-10s |", shortWorkload(s.Workload))
			for _, p := range s.Points {
				v := get(p)
				mark := " "
				if !p.Kept {
					mark = "*" // reverted iteration
				}
				fmt.Fprintf(&b, format+"%s|", v, mark)
			}
			b.WriteString("\n")
		}
	}
	panel("(a) Throughput (ops/sec)", func(p IterPoint) float64 { return p.Throughput }, " %9.0f")
	panel("(b) P99 Latency Write (us)", func(p IterPoint) float64 { return p.P99Write }, " %9.2f")
	panel("(c) P99 Latency Read (us)", func(p IterPoint) float64 { return p.P99Read }, " %9.2f")
	b.WriteString("  (*) = iteration reverted by the Active Flagger\n")
	return b.String()
}

// CSVFigure renders the figure data as CSV for external plotting.
func CSVFigure(sessions []*Session) string {
	var b strings.Builder
	b.WriteString("workload,iteration,throughput_ops_sec,p99_write_us,p99_read_us,kept\n")
	for _, s := range sessions {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%d,%.1f,%.2f,%.2f,%v\n",
				s.Workload, p.Iteration, p.Throughput, p.P99Write, p.P99Read, p.Kept)
		}
	}
	return b.String()
}
