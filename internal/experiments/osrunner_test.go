package experiments

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/lsm"
	"repro/internal/mockllm"
	"repro/internal/sysmon"
)

func TestOSRunnerRealFiles(t *testing.T) {
	r := &OSRunner{BaseDir: t.TempDir(), Workload: "fillrandom", Ops: 5000, ValueSize: 100, Seed: 3}
	rep, err := r.RunBenchmark(lsm.DBBenchDefaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 5000 || rep.Throughput <= 0 {
		t.Fatalf("report: ops=%d tput=%f", rep.Ops, rep.Throughput)
	}
	// Second run gets a fresh directory (fresh DB, same op count).
	rep2, err := r.RunBenchmark(lsm.DBBenchDefaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Ops != rep.Ops {
		t.Fatalf("runs differ in ops: %d vs %d", rep2.Ops, rep.Ops)
	}
}

func TestOSRunnerBadWorkload(t *testing.T) {
	r := &OSRunner{BaseDir: t.TempDir(), Workload: "nope"}
	if _, err := r.RunBenchmark(lsm.DBBenchDefaults(), nil); err == nil {
		t.Fatal("bad workload accepted")
	}
}

// TestFullLoopOverHTTP exercises the complete wire path: the mock expert
// served over an OpenAI-compatible HTTP API (as cmd/mockllm does), consumed
// by the tuning loop through the real HTTP client, driving real-file
// benchmarks.
func TestFullLoopOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	expert := mockllm.NewExpert(5)
	mux := http.NewServeMux()
	mux.Handle("/v1/chat/completions", llm.ServeChat(expert))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	res, err := core.Run(context.Background(), core.Config{
		Client:         llm.NewHTTPClient(srv.URL+"/v1", "", "mock-gpt-4"),
		Runner:         &OSRunner{BaseDir: t.TempDir(), Workload: "fillrandom", Ops: 5000, ValueSize: 100, Seed: 5},
		Monitor:        sysmon.NewOSMonitor(),
		InitialOptions: lsm.DBBenchDefaults(),
		WorkloadName:   "fillrandom",
		MaxIterations:  2,
		StallLimit:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 2 {
		t.Fatalf("iterations = %d", len(res.Iterations))
	}
	for _, it := range res.Iterations {
		if len(it.Parsed.Changes) == 0 {
			t.Fatalf("iteration %d parsed nothing over HTTP", it.Number)
		}
	}
}
