package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/lsm"
	"repro/internal/mockllm"
	"repro/internal/safeguard"
)

// AblationRow summarizes one framework variant's outcome.
type AblationRow struct {
	Variant     string
	Baseline    float64 // ops/sec, iteration 0
	Final       float64 // ops/sec of the configuration the variant outputs
	Best        float64 // best ops/sec ever measured
	Reverted    int     // iterations the flagger rejected
	Blocked     int     // suggestions stopped by safeguards
	UnsafeFinal bool    // final config contains a durability-critical change
}

// Ablation quantifies the framework's design choices (DESIGN.md §4's
// ablation benches): the full loop versus a loop without the Safeguard
// Enforcer and a loop without the Active Flagger, against an expert with an
// elevated dangerous/hallucination rate so the differences are visible.
func Ablation(ctx context.Context, dev *device.Model, prof device.Profile, workload string, cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	variants := []struct {
		name   string
		tweak  func(*core.Config)
		expert func() *mockllm.Expert
	}{
		{
			name:  "full framework",
			tweak: func(*core.Config) {},
			expert: func() *mockllm.Expert {
				e := mockllm.NewExpert(cfg.Seed)
				e.DangerousRate = 0.5
				e.HallucinationRate = 0.3
				return e
			},
		},
		{
			name:  "no safeguards",
			tweak: func(c *core.Config) { c.DisableSafeguards = true },
			expert: func() *mockllm.Expert {
				e := mockllm.NewExpert(cfg.Seed)
				e.DangerousRate = 0.5
				e.HallucinationRate = 0.3
				return e
			},
		},
		{
			name:  "no active flagger",
			tweak: func(c *core.Config) { c.KeepAllIterations = true; c.DisableEarlyStop = true },
			expert: func() *mockllm.Expert {
				e := mockllm.NewExpert(cfg.Seed)
				e.DangerousRate = 0.5
				e.HallucinationRate = 0.3
				return e
			},
		},
	}
	var rows []AblationRow
	for _, v := range variants {
		runner := &SimRunner{Device: dev, Profile: prof, Workload: workload, Cfg: cfg}
		cc := core.Config{
			Client:              v.expert(),
			Runner:              runner,
			Monitor:             &HostMonitor{Device: dev, Profile: prof},
			InitialOptions:      lsm.DBBenchDefaults(),
			WorkloadName:        workload,
			WorkloadDescription: workloadDescription(workload),
			MaxIterations:       cfg.MaxIterations,
			StallLimit:          cfg.MaxIterations + 1,
			Logf:                cfg.Logf,
		}
		v.tweak(&cc)
		res, err := core.Run(ctx, cc)
		if err != nil {
			return rows, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		row := AblationRow{
			Variant:  v.name,
			Baseline: res.BaselineMetrics.Throughput,
			Best:     res.BestMetrics.Throughput,
		}
		// "Final" is what the variant would ship: the last kept config's
		// measurement (for keep-all, the last iteration even if it was a
		// regression).
		row.Final = res.BestMetrics.Throughput
		if cc.KeepAllIterations && len(res.Iterations) > 0 {
			row.Final = res.Iterations[len(res.Iterations)-1].Metrics.Throughput
		}
		for _, it := range res.Iterations {
			if !it.Kept {
				row.Reverted++
			}
			for _, d := range it.Decisions {
				if d.Verdict == safeguard.Blacklisted || d.Verdict == safeguard.Hallucinated ||
					d.Verdict == safeguard.Invalid {
					row.Blocked++
				}
			}
		}
		row.UnsafeFinal = res.BestOptions.DisableWAL || res.BestOptions.AvoidFlushDuringShutdown ||
			res.BestOptions.ParanoidChecks != lsm.DBBenchDefaults().ParanoidChecks
		if cc.KeepAllIterations && len(res.Iterations) > 0 {
			lastOpts := res.Iterations[len(res.Iterations)-1].Options
			row.UnsafeFinal = lastOpts.DisableWAL || lastOpts.AvoidFlushDuringShutdown
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblation renders the ablation rows.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	title := "Ablation: framework components under a misbehaving expert"
	b.WriteString(title + "\n")
	b.WriteString(strings.Repeat("-", len(title)) + "\n")
	fmt.Fprintf(&b, "%-20s | %12s | %12s | %8s | %8s | %s\n",
		"variant", "baseline", "final", "reverted", "blocked", "unsafe final config")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s | %12.0f | %12.0f | %8d | %8d | %v\n",
			r.Variant, r.Baseline, r.Final, r.Reverted, r.Blocked, r.UnsafeFinal)
	}
	return b.String()
}
