package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/lsm"
)

// OSRunner executes benchmarks against the real filesystem — the
// production path: tuning an actual store on the machine ELMo-Tune runs on
// rather than a simulated device. Each call uses a fresh subdirectory so
// iterations are independent.
type OSRunner struct {
	// BaseDir holds the per-run database directories.
	BaseDir string
	// Workload is the db_bench benchmark name.
	Workload string
	// Ops and ValueSize size the workload.
	Ops       int64
	ValueSize int
	// Seed drives workload randomness.
	Seed int64
	// OnDB, when set, is called with each freshly opened database before its
	// benchmark runs (used to repoint a live /metrics exporter).
	OnDB func(*lsm.DB)
	// ColumnFamilies, when non-empty, spreads workload traffic across these
	// named families (created on open if missing).
	ColumnFamilies []string

	runs int
}

// RunBenchmark implements core.BenchRunner on real files.
func (r *OSRunner) RunBenchmark(opts *lsm.Options, monitor func(bench.Progress) bool) (*bench.Report, error) {
	return r.RunBenchmarkConfig(lsm.NewConfigSet(opts), monitor)
}

// RunBenchmarkConfig implements core.ConfigRunner: the whole multi-family
// configuration is opened on real files and traffic spreads across
// ColumnFamilies.
func (r *OSRunner) RunBenchmarkConfig(cfg *lsm.ConfigSet, monitor func(bench.Progress) bool) (*bench.Report, error) {
	r.runs++
	dir := filepath.Join(r.BaseDir, fmt.Sprintf("run-%03d", r.runs))
	if err := os.RemoveAll(dir); err != nil {
		return nil, err
	}
	c := cfg.Clone()
	c.Default.Env = lsm.NewOSEnv()
	c.Default.Stats = lsm.NewStatistics()
	db, err := lsm.OpenConfig(dir, c)
	if err != nil {
		return nil, err
	}
	defer func() {
		db.Close()
		os.RemoveAll(dir) // keep disk use bounded across iterations
	}()
	if r.OnDB != nil {
		r.OnDB(db)
	}
	valueSize := r.ValueSize
	if valueSize <= 0 {
		valueSize = 400
	}
	ops := r.Ops
	if ops <= 0 {
		ops = 100_000
	}
	spec, err := bench.WorkloadByName(r.Workload, ops, valueSize, r.Seed)
	if err != nil {
		return nil, err
	}
	spec.ColumnFamilies = r.ColumnFamilies
	return (&bench.Runner{DB: db, Spec: spec, Monitor: monitor}).Run()
}
