// Package experiments reproduces the paper's evaluation (§5): Tables 1-5
// and Figures 3-4, at a configurable scale (see lsm.Scaled and DESIGN.md §2
// for the scaling substitution). Each experiment is an ELMo-Tune session —
// the full feedback loop against the simulated GPT-4 expert — on a given
// device model, hardware profile and workload.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/flagger"
	"repro/internal/llm"
	"repro/internal/lsm"
	"repro/internal/mockllm"
	"repro/internal/sysmon"
)

// Config shapes an experiment run.
type Config struct {
	// Scale divides the paper's operation counts, the hardware memory and
	// every byte-dimensioned option. Default 40 (50M-op fillrandom becomes
	// 1.25M ops on a 102 MiB-memory host with a 1.6 MiB write buffer).
	Scale int64
	// Seed drives workloads, the engine and the expert.
	Seed int64
	// MaxIterations per tuning session (paper: 7).
	MaxIterations int
	// Client overrides the LLM (default: mockllm.NewExpert(Seed)).
	Client llm.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// OnDB, when set, is called with each freshly opened database before its
	// benchmark runs (used to repoint a live /metrics exporter at the
	// current iteration's DB).
	OnDB func(*lsm.DB)
	// Trace, when set, receives the tuning loop's JSONL trace (one
	// core.TraceRecord per iteration).
	Trace io.Writer
	// InsightPath, when set, names the cross-session insight memory file:
	// the session recalls the best configuration found for similar workload
	// fingerprints and records its own outcome at the end.
	InsightPath string
	// ColumnFamilies, when non-empty, opens every session database with
	// these named families (beyond "default"), spreads workload traffic
	// across them, and lets the tuner adjust each family's CFOptions
	// independently.
	ColumnFamilies []string
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 40
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 7
	}
	if c.Client == nil {
		c.Client = mockllm.NewExpert(c.Seed)
	}
	return c
}

// PaperOps returns the paper's op counts divided by scale: fillrandom 50M;
// readrandom 10M reads over 25M preloaded; RRWR 25M; mixgraph 25M.
func PaperOps(scale int64) (fr, rrReads, rrPreload, rrwr, mix int64) {
	return 50_000_000 / scale,
		10_000_000 / scale,
		25_000_000 / scale,
		25_000_000 / scale,
		25_000_000 / scale
}

// workloadSpec builds the scaled Spec for one of the paper's workloads.
func workloadSpec(name string, cfg Config) (*bench.Spec, error) {
	fr, rrReads, rrPreload, rrwr, mix := PaperOps(cfg.Scale)
	// db_bench's default value size: with 25M keys this makes the dataset
	// comparable to the 4 GiB hosts' memory, the regime where cache tuning
	// has leverage (and the regime the paper ran in).
	const valueSize = 100
	switch name {
	case "fillrandom":
		return bench.FillRandom(fr, valueSize, cfg.Seed), nil
	case "readrandom":
		return bench.ReadRandom(rrReads, uint64(rrPreload), valueSize, cfg.Seed), nil
	case "readrandomwriterandom":
		return bench.ReadRandomWriteRandom(rrwr, valueSize, cfg.Seed), nil
	case "mixgraph":
		return bench.Mixgraph(mix, valueSize, cfg.Seed), nil
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
}

// workloadDescription is the user's expected-workload statement per §5.1.
func workloadDescription(name string) string {
	switch name {
	case "fillrandom":
		return "write intensive: 100% random-key inserts"
	case "readrandom":
		return "read intensive: 100% random point lookups on a preloaded database"
	case "readrandomwriterandom":
		return "mixed: two threads interleaving random reads (90%) and writes (10%)"
	case "mixgraph":
		return "production-like mix: 50% reads / 50% writes, skewed key popularity"
	default:
		return name
	}
}

// SimRunner executes benchmarks for one (device, profile) pair, creating a
// fresh scaled environment and database per call so iterations are
// independent, like the paper's separate db_bench invocations.
type SimRunner struct {
	Device   *device.Model
	Profile  device.Profile
	Workload string
	Cfg      Config
	runs     int
}

// RunBenchmark implements core.BenchRunner.
func (s *SimRunner) RunBenchmark(opts *lsm.Options, monitor func(bench.Progress) bool) (*bench.Report, error) {
	return s.RunBenchmarkConfig(lsm.NewConfigSet(opts), monitor)
}

// RunBenchmarkConfig implements core.ConfigRunner: the whole multi-family
// configuration is opened (named families and their per-family options
// included) and the workload spreads traffic across Cfg.ColumnFamilies.
func (s *SimRunner) RunBenchmarkConfig(cfg *lsm.ConfigSet, monitor func(bench.Progress) bool) (*bench.Report, error) {
	s.runs++
	env := lsm.NewScaledSimEnv(s.Device, s.Profile, s.Cfg.Scale, s.Cfg.Seed+int64(s.runs))
	c := cfg.Scaled(s.Cfg.Scale)
	c.Default.Env = env
	c.Default.Stats = lsm.NewStatistics()
	c.Default.Seed = s.Cfg.Seed
	db, err := lsm.OpenConfig("/bench-db", c)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if s.Cfg.OnDB != nil {
		s.Cfg.OnDB(db)
	}
	spec, err := workloadSpec(s.Workload, s.Cfg)
	if err != nil {
		return nil, err
	}
	spec.ColumnFamilies = s.Cfg.ColumnFamilies
	r := &bench.Runner{DB: db, Spec: spec, Monitor: monitor}
	return r.Run()
}

// HostMonitor reports the UNSCALED hardware profile so prompts (and the
// expert's memory-aware sizing) see the paper's real machine sizes.
type HostMonitor struct {
	Device  *device.Model
	Profile device.Profile
}

// Host implements sysmon.Monitor.
func (h *HostMonitor) Host() sysmon.HostInfo {
	env := lsm.NewSimEnv(h.Device, h.Profile, 1)
	return sysmon.NewSimMonitor(env).Host()
}

// Sample implements sysmon.Monitor.
func (h *HostMonitor) Sample() sysmon.Usage { return sysmon.Usage{} }

// IterPoint is one bar of the paper's per-iteration figures.
type IterPoint struct {
	Iteration  int
	Throughput float64
	P99Write   float64
	P99Read    float64
	Kept       bool
}

// Session is one complete tuning run and its derived series.
type Session struct {
	Workload string
	Device   string
	Profile  string
	Result   *core.Result
	// Points holds iterations 0..N (0 = default config).
	Points []IterPoint
	// Elapsed is the wall time of the whole session.
	Elapsed time.Duration
}

// DefaultMetrics and TunedMetrics are the table cells.
func (s *Session) DefaultMetrics() flagger.Metrics { return s.Result.BaselineMetrics }

// TunedMetrics returns the best configuration's metrics.
func (s *Session) TunedMetrics() flagger.Metrics { return s.Result.BestMetrics }

// RunSession executes one full ELMo-Tune session.
func RunSession(ctx context.Context, dev *device.Model, prof device.Profile, workload string, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	runner := &SimRunner{Device: dev, Profile: prof, Workload: workload, Cfg: cfg}
	// Seed the session with one CFOptions entry per requested family so the
	// LLM sees (and may tune) each of them from iteration 1.
	initial := lsm.NewConfigSet(lsm.DBBenchDefaults())
	for _, name := range cfg.ColumnFamilies {
		if name != "" && name != lsm.DefaultColumnFamilyName {
			initial.CF(name)
		}
	}
	res, err := core.Run(ctx, core.Config{
		Client:              cfg.Client,
		Runner:              runner,
		Monitor:             &HostMonitor{Device: dev, Profile: prof},
		InitialConfig:       initial,
		WorkloadName:        workload,
		WorkloadDescription: workloadDescription(workload),
		MaxIterations:       cfg.MaxIterations,
		// Keep tuning through plateaus: the paper always runs 7 iterations.
		StallLimit: cfg.MaxIterations + 1,
		// The paper's 30-second monitor window, in scaled virtual time.
		EarlyStopCheckAfter: 30 * time.Second / time.Duration(cfg.Scale),
		Logf:                cfg.Logf,
		Trace:               cfg.Trace,
		InsightPath:         cfg.InsightPath,
	})
	if err != nil {
		return nil, err
	}
	s := &Session{
		Workload: workload,
		Device:   dev.Kind.String(),
		Profile:  prof.Name,
		Result:   res,
		Elapsed:  time.Since(start),
	}
	s.Points = append(s.Points, IterPoint{
		Iteration:  0,
		Throughput: res.BaselineMetrics.Throughput,
		P99Write:   res.BaselineMetrics.P99Write,
		P99Read:    res.BaselineMetrics.P99Read,
		Kept:       true,
	})
	for _, it := range res.Iterations {
		s.Points = append(s.Points, IterPoint{
			Iteration:  it.Number,
			Throughput: it.Metrics.Throughput,
			P99Write:   it.Metrics.P99Write,
			P99Read:    it.Metrics.P99Read,
			Kept:       it.Kept,
		})
	}
	return s, nil
}
