package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/device"
)

func TestAblation(t *testing.T) {
	cfg := Config{Scale: 800, Seed: 13, MaxIterations: 3}
	rows, err := Ablation(context.Background(), device.NVMe(), device.Profile4C4G(), "fillrandom", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full := byName["full framework"]
	unsafe := byName["no safeguards"]
	noflag := byName["no active flagger"]

	// The full framework must block things the unsafe variant lets through.
	if full.Blocked == 0 {
		t.Error("full framework blocked nothing despite a 50% dangerous-suggestion rate")
	}
	if unsafe.Blocked > full.Blocked {
		t.Errorf("unsafe variant blocked more than the full framework: %d > %d",
			unsafe.Blocked, full.Blocked)
	}
	// The full framework never ships below baseline; keep-all can.
	if full.Final < full.Baseline {
		t.Errorf("full framework shipped below baseline: %.0f < %.0f", full.Final, full.Baseline)
	}
	_ = noflag

	out := FormatAblation(rows)
	for _, want := range []string{"full framework", "no safeguards", "no active flagger", "blocked"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}
