// Package ini implements the subset of the INI file format used by RocksDB
// OPTIONS files: named sections, key=value pairs, comments starting with '#'
// or ';', and stable serialization order. It is the bridge between the tuning
// framework's natural-language world and the engine's typed options.
package ini

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Section is one [name] block of key=value pairs. Key order is preserved from
// the source; Set appends new keys at the end.
type Section struct {
	Name string
	keys []string
	vals map[string]string
}

// NewSection returns an empty section with the given name.
func NewSection(name string) *Section {
	return &Section{Name: name, vals: make(map[string]string)}
}

// Get returns the value for key and whether it was present.
func (s *Section) Get(key string) (string, bool) {
	v, ok := s.vals[key]
	return v, ok
}

// Set stores key=value, preserving first-seen key order.
func (s *Section) Set(key, value string) {
	if _, ok := s.vals[key]; !ok {
		s.keys = append(s.keys, key)
	}
	s.vals[key] = value
}

// Delete removes key if present and reports whether it was removed.
func (s *Section) Delete(key string) bool {
	if _, ok := s.vals[key]; !ok {
		return false
	}
	delete(s.vals, key)
	for i, k := range s.keys {
		if k == key {
			s.keys = append(s.keys[:i], s.keys[i+1:]...)
			break
		}
	}
	return true
}

// Keys returns the keys in stable (insertion) order.
func (s *Section) Keys() []string {
	out := make([]string, len(s.keys))
	copy(out, s.keys)
	return out
}

// Len returns the number of keys in the section.
func (s *Section) Len() int { return len(s.keys) }

// File is a parsed ini document: an ordered list of sections. Keys appearing
// before any [section] header live in the unnamed section "".
type File struct {
	order    []string
	sections map[string]*Section
}

// NewFile returns an empty ini document.
func NewFile() *File {
	return &File{sections: make(map[string]*Section)}
}

// Section returns the named section, creating it if absent.
func (f *File) Section(name string) *Section {
	if s, ok := f.sections[name]; ok {
		return s
	}
	s := NewSection(name)
	f.sections[name] = s
	f.order = append(f.order, name)
	return s
}

// HasSection reports whether the named section exists.
func (f *File) HasSection(name string) bool {
	_, ok := f.sections[name]
	return ok
}

// SectionNames returns section names in document order.
func (f *File) SectionNames() []string {
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Parse reads an ini document from r. Lines may be:
//
//	[section name]
//	key = value          # trailing comments are NOT stripped from values
//	# comment            ; comment
//
// Whitespace around keys, values and section names is trimmed. Duplicate keys
// keep the last value. A key line without '=' is an error.
func Parse(r io.Reader) (*File, error) {
	f := NewFile()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var cur *Section
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == ';' {
			continue
		}
		if line[0] == '[' {
			end := strings.IndexByte(line, ']')
			if end < 0 {
				return nil, fmt.Errorf("ini: line %d: unterminated section header %q", lineNo, line)
			}
			name := strings.TrimSpace(line[1:end])
			cur = f.Section(name)
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("ini: line %d: expected key=value, got %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("ini: line %d: empty key", lineNo)
		}
		if cur == nil {
			cur = f.Section("")
		}
		cur.Set(key, val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ini: scan: %w", err)
	}
	return f, nil
}

// ParseString parses an ini document held in a string.
func ParseString(s string) (*File, error) { return Parse(strings.NewReader(s)) }

// Load parses the ini file at path.
func Load(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return Parse(fh)
}

// WriteTo serializes the document in section order, keys in insertion order.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for i, name := range f.order {
		sec := f.sections[name]
		if name != "" {
			m, err := fmt.Fprintf(w, "[%s]\n", name)
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
		for _, k := range sec.keys {
			m, err := fmt.Fprintf(w, "  %s=%s\n", k, sec.vals[k])
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
		if i != len(f.order)-1 {
			m, err := fmt.Fprintln(w)
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// String renders the document as ini text.
func (f *File) String() string {
	var b strings.Builder
	f.WriteTo(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}

// Save writes the document to path atomically (write temp, rename).
func (f *File) Save(path string) error {
	tmp := path + ".tmp"
	fh, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.WriteTo(fh); err != nil {
		fh.Close()
		os.Remove(tmp)
		return err
	}
	if err := fh.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Flatten returns every key as "section.key"→value ("" section keys bare),
// sorted lexicographically — useful for diffing two documents.
func (f *File) Flatten() map[string]string {
	out := make(map[string]string)
	for _, name := range f.order {
		sec := f.sections[name]
		for _, k := range sec.keys {
			fk := k
			if name != "" {
				fk = name + "." + k
			}
			out[fk] = sec.vals[k]
		}
	}
	return out
}

// Diff reports keys whose values differ between a and b (including keys
// present in only one document), sorted. Each entry is "key: old -> new";
// missing values render as "<unset>".
func Diff(a, b *File) []string {
	fa, fb := a.Flatten(), b.Flatten()
	keys := make(map[string]struct{})
	for k := range fa {
		keys[k] = struct{}{}
	}
	for k := range fb {
		keys[k] = struct{}{}
	}
	var out []string
	for k := range keys {
		va, oka := fa[k]
		vb, okb := fb[k]
		if oka && okb && va == vb {
			continue
		}
		if !oka {
			va = "<unset>"
		}
		if !okb {
			vb = "<unset>"
		}
		out = append(out, fmt.Sprintf("%s: %s -> %s", k, va, vb))
	}
	sort.Strings(out)
	return out
}
