package ini

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	src := `
# RocksDB option file
[Version]
  rocksdb_version=8.8.1

[DBOptions]
  max_background_jobs=2
  create_if_missing=true

[CFOptions "default"]
  write_buffer_size=67108864
`
	f, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.SectionNames(); !reflect.DeepEqual(got, []string{"Version", "DBOptions", `CFOptions "default"`}) {
		t.Fatalf("section names = %v", got)
	}
	if v, ok := f.Section("DBOptions").Get("max_background_jobs"); !ok || v != "2" {
		t.Fatalf("max_background_jobs = %q, %v", v, ok)
	}
	if v, _ := f.Section(`CFOptions "default"`).Get("write_buffer_size"); v != "67108864" {
		t.Fatalf("write_buffer_size = %q", v)
	}
}

func TestParseGlobalSection(t *testing.T) {
	f, err := ParseString("a=1\nb = two words \n[S]\nc=3\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Section("").Get("b"); v != "two words" {
		t.Fatalf("b = %q", v)
	}
	if v, _ := f.Section("S").Get("c"); v != "3" {
		t.Fatalf("c = %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"[unterminated\n", "novalue\n", "=3\n"} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	f, err := ParseString("# c1\n; c2\n\n[S]\n  k=v\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Section("S").Len() != 1 {
		t.Fatalf("len = %d", f.Section("S").Len())
	}
}

func TestDuplicateKeyLastWins(t *testing.T) {
	f, err := ParseString("[S]\nk=1\nk=2\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Section("S").Get("k"); v != "2" {
		t.Fatalf("k = %q", v)
	}
	if got := f.Section("S").Keys(); len(got) != 1 {
		t.Fatalf("keys = %v", got)
	}
}

func TestSectionDelete(t *testing.T) {
	s := NewSection("x")
	s.Set("a", "1")
	s.Set("b", "2")
	if !s.Delete("a") {
		t.Fatal("Delete(a) = false")
	}
	if s.Delete("a") {
		t.Fatal("second Delete(a) = true")
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("keys = %v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	f := NewFile()
	db := f.Section("DBOptions")
	db.Set("max_background_jobs", "4")
	db.Set("bytes_per_sync", "1048576")
	cf := f.Section(`CFOptions "default"`)
	cf.Set("write_buffer_size", "33554432")

	g, err := ParseString(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Flatten(), g.Flatten()) {
		t.Fatalf("round trip mismatch:\n%v\n%v", f.Flatten(), g.Flatten())
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "OPTIONS")
	f := NewFile()
	f.Section("DBOptions").Set("k", "v")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := g.Section("DBOptions").Get("k"); v != "v" {
		t.Fatalf("k = %q", v)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestDiff(t *testing.T) {
	a, _ := ParseString("[S]\nk=1\nonly_a=x\n")
	b, _ := ParseString("[S]\nk=2\nonly_b=y\n")
	got := Diff(a, b)
	want := []string{
		"S.k: 1 -> 2",
		"S.only_a: x -> <unset>",
		"S.only_b: <unset> -> y",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Diff = %v, want %v", got, want)
	}
	if d := Diff(a, a); len(d) != 0 {
		t.Fatalf("self diff = %v", d)
	}
}

// identChars is the alphabet for generated keys/values in the property test.
const identChars = "abcdefghijklmnopqrstuvwxyz_0123456789"

func randIdent(r *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(identChars[r.Intn(len(identChars))])
	}
	return b.String()
}

// TestQuickRoundTrip verifies Parse(String(f)) preserves all content for
// arbitrary documents built from identifier-safe keys and values.
func TestQuickRoundTrip(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := NewFile()
		nSec := 1 + r.Intn(4)
		for i := 0; i < nSec; i++ {
			sec := f.Section("sec_" + randIdent(r, 1+r.Intn(8)))
			nKeys := r.Intn(10)
			for j := 0; j < nKeys; j++ {
				sec.Set(randIdent(r, 1+r.Intn(12)), randIdent(r, r.Intn(16)))
			}
		}
		g, err := ParseString(f.String())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(f.Flatten(), g.Flatten())
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuotedSectionNames(t *testing.T) {
	src := `[DBOptions]
max_background_jobs = 2
[CFOptions "default"]
write_buffer_size = 1048576
[CFOptions "cold keys"]
write_buffer_size = 4194304
[TableOptions/BlockBasedTable "cold keys"]
block_size = 8192
`
	f, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"DBOptions", `CFOptions "default"`, `CFOptions "cold keys"`, `TableOptions/BlockBasedTable "cold keys"`}
	if got := f.SectionNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SectionNames = %q, want %q", got, want)
	}
	if v, _ := f.Section(`CFOptions "cold keys"`).Get("write_buffer_size"); v != "4194304" {
		t.Fatalf(`cold keys write_buffer_size = %q`, v)
	}
	if v, _ := f.Section(`TableOptions/BlockBasedTable "cold keys"`).Get("block_size"); v != "8192" {
		t.Fatalf("cold keys block_size = %q", v)
	}
}

func TestMultipleCFSections(t *testing.T) {
	// Several CFOptions sections with the same key must stay distinct: the
	// section name (incl. its quoted family) is the identity.
	src := `[CFOptions "default"]
write_buffer_size = 1
[CFOptions "hot"]
write_buffer_size = 2
[CFOptions "warm"]
write_buffer_size = 3
`
	f, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"default", "hot", "warm"} {
		sec := f.Section(`CFOptions "` + name + `"`)
		if v, _ := sec.Get("write_buffer_size"); v != fmt.Sprint(i+1) {
			t.Fatalf("%s write_buffer_size = %q, want %d", name, v, i+1)
		}
	}
}

func TestQuotedSectionWriteParseStable(t *testing.T) {
	// write -> parse -> write must be byte-stable for multi-CF documents.
	f := NewFile()
	f.Section("DBOptions").Set("max_open_files", "500")
	f.Section(`CFOptions "default"`).Set("write_buffer_size", "1048576")
	f.Section(`CFOptions "hot tier"`).Set("write_buffer_size", "8388608")
	f.Section(`CFOptions "hot tier"`).Set("level0_file_num_compaction_trigger", "2")
	first := f.String()
	g, err := ParseString(first)
	if err != nil {
		t.Fatal(err)
	}
	second := g.String()
	if first != second {
		t.Fatalf("write/parse/write differs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
