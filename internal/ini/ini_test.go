package ini

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	src := `
# RocksDB option file
[Version]
  rocksdb_version=8.8.1

[DBOptions]
  max_background_jobs=2
  create_if_missing=true

[CFOptions "default"]
  write_buffer_size=67108864
`
	f, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.SectionNames(); !reflect.DeepEqual(got, []string{"Version", "DBOptions", `CFOptions "default"`}) {
		t.Fatalf("section names = %v", got)
	}
	if v, ok := f.Section("DBOptions").Get("max_background_jobs"); !ok || v != "2" {
		t.Fatalf("max_background_jobs = %q, %v", v, ok)
	}
	if v, _ := f.Section(`CFOptions "default"`).Get("write_buffer_size"); v != "67108864" {
		t.Fatalf("write_buffer_size = %q", v)
	}
}

func TestParseGlobalSection(t *testing.T) {
	f, err := ParseString("a=1\nb = two words \n[S]\nc=3\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Section("").Get("b"); v != "two words" {
		t.Fatalf("b = %q", v)
	}
	if v, _ := f.Section("S").Get("c"); v != "3" {
		t.Fatalf("c = %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"[unterminated\n", "novalue\n", "=3\n"} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	f, err := ParseString("# c1\n; c2\n\n[S]\n  k=v\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Section("S").Len() != 1 {
		t.Fatalf("len = %d", f.Section("S").Len())
	}
}

func TestDuplicateKeyLastWins(t *testing.T) {
	f, err := ParseString("[S]\nk=1\nk=2\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Section("S").Get("k"); v != "2" {
		t.Fatalf("k = %q", v)
	}
	if got := f.Section("S").Keys(); len(got) != 1 {
		t.Fatalf("keys = %v", got)
	}
}

func TestSectionDelete(t *testing.T) {
	s := NewSection("x")
	s.Set("a", "1")
	s.Set("b", "2")
	if !s.Delete("a") {
		t.Fatal("Delete(a) = false")
	}
	if s.Delete("a") {
		t.Fatal("second Delete(a) = true")
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("keys = %v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	f := NewFile()
	db := f.Section("DBOptions")
	db.Set("max_background_jobs", "4")
	db.Set("bytes_per_sync", "1048576")
	cf := f.Section(`CFOptions "default"`)
	cf.Set("write_buffer_size", "33554432")

	g, err := ParseString(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Flatten(), g.Flatten()) {
		t.Fatalf("round trip mismatch:\n%v\n%v", f.Flatten(), g.Flatten())
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "OPTIONS")
	f := NewFile()
	f.Section("DBOptions").Set("k", "v")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := g.Section("DBOptions").Get("k"); v != "v" {
		t.Fatalf("k = %q", v)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestDiff(t *testing.T) {
	a, _ := ParseString("[S]\nk=1\nonly_a=x\n")
	b, _ := ParseString("[S]\nk=2\nonly_b=y\n")
	got := Diff(a, b)
	want := []string{
		"S.k: 1 -> 2",
		"S.only_a: x -> <unset>",
		"S.only_b: <unset> -> y",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Diff = %v, want %v", got, want)
	}
	if d := Diff(a, a); len(d) != 0 {
		t.Fatalf("self diff = %v", d)
	}
}

// identChars is the alphabet for generated keys/values in the property test.
const identChars = "abcdefghijklmnopqrstuvwxyz_0123456789"

func randIdent(r *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(identChars[r.Intn(len(identChars))])
	}
	return b.String()
}

// TestQuickRoundTrip verifies Parse(String(f)) preserves all content for
// arbitrary documents built from identifier-safe keys and values.
func TestQuickRoundTrip(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := NewFile()
		nSec := 1 + r.Intn(4)
		for i := 0; i < nSec; i++ {
			sec := f.Section("sec_" + randIdent(r, 1+r.Intn(8)))
			nKeys := r.Intn(10)
			for j := 0; j < nKeys; j++ {
				sec.Set(randIdent(r, 1+r.Intn(12)), randIdent(r, r.Intn(16)))
			}
		}
		g, err := ParseString(f.String())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(f.Flatten(), g.Flatten())
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
