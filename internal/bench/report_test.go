package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/lsm"
)

func sampleReport() *Report {
	r := &Report{
		Workload:   "readrandomwriterandom",
		Threads:    2,
		Ops:        10000,
		Bytes:      5 << 20,
		Elapsed:    2 * time.Second,
		Throughput: 5000,
		Read:       NewHistogram(),
		Write:      NewHistogram(),
		ReadMisses: 120,
		Stats: map[string]int64{
			"rocksdb.stall.micros":    1234,
			"rocksdb.flush.count":     7,
			"rocksdb.block.cache.hit": 999,
		},
		Metrics: lsm.Metrics{LevelFiles: []int{2, 1, 0}},
	}
	for i := 0; i < 100; i++ {
		r.Write.Add(time.Duration(5+i%10) * time.Microsecond)
		r.Read.Add(time.Duration(50+i%100) * time.Microsecond)
	}
	return r
}

func TestReportFormat(t *testing.T) {
	out := sampleReport().Format()
	for _, want := range []string{
		"readrandomwriterandom",
		"micros/op",
		"5000 ops/sec",
		"MB/s",
		"found)",
		"Microseconds per write:",
		"Microseconds per read:",
		"Level files: [2 1 0]",
		"rocksdb.stall.micros COUNT : 1234",
		"rocksdb.flush.count COUNT : 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestReportDerivedMetrics(t *testing.T) {
	r := sampleReport()
	if mpo := r.MicrosPerOp(); mpo < 199 || mpo > 201 {
		t.Fatalf("MicrosPerOp = %v", mpo)
	}
	if mbs := r.MBPerSec(); mbs < 2.5 || mbs > 2.7 {
		t.Fatalf("MBPerSec = %v", mbs)
	}
	if r.P99Read() <= r.P99Write() {
		t.Fatal("sample read p99 should exceed write p99")
	}
	sum := r.Summary()
	if !strings.Contains(sum, "readrandomwriterandom") || !strings.Contains(sum, "p99") {
		t.Fatalf("Summary = %q", sum)
	}
}

func TestReportAbortedMarker(t *testing.T) {
	r := sampleReport()
	r.Aborted = true
	if !strings.Contains(r.Format(), "[ABORTED EARLY]") {
		t.Fatal("aborted marker missing")
	}
}

func TestReportZeroDivisionSafety(t *testing.T) {
	r := &Report{Read: NewHistogram(), Write: NewHistogram()}
	if r.MicrosPerOp() != 0 || r.MBPerSec() != 0 {
		t.Fatal("zero report produced non-zero rates")
	}
	_ = r.Format() // must not panic
}
