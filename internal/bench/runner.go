package bench

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/lsm"
)

// Progress is delivered to the runner's monitor callback roughly once per
// (virtual) second.
type Progress struct {
	Elapsed    time.Duration
	OpsDone    int64
	Throughput float64 // ops/sec so far
}

// Runner executes a Spec against a DB. In simulation mode it is a
// deterministic event loop over virtual threads: the thread with the
// smallest local virtual time issues the next operation, the engine charges
// the operation's cost, and the thread's clock advances by it. In OS mode
// threads are real goroutines under the wall clock.
type Runner struct {
	DB   *lsm.DB
	Spec *Spec
	// Monitor, when set, receives periodic progress and may return false
	// to stop the run early (the framework's Benchmark Monitor uses this
	// for the first-30-seconds check and 'redo' on performance drops).
	Monitor func(Progress) bool

	realElapsed time.Duration // wall duration of an OS-mode run
	// cfs are the resolved column-family handles traffic is split across
	// (nil entry = default family). Populated from Spec.ColumnFamilies at
	// Run start; len 1 with a nil handle for single-family workloads.
	cfs []*lsm.ColumnFamilyHandle
}

// resolveCFs maps Spec.ColumnFamilies onto handles, creating families the
// database does not have yet (matching db_bench, which creates its
// -num_column_families on first use).
func (r *Runner) resolveCFs() error {
	names := r.Spec.ColumnFamilies
	if len(names) == 0 {
		r.cfs = []*lsm.ColumnFamilyHandle{nil}
		return nil
	}
	r.cfs = make([]*lsm.ColumnFamilyHandle, 0, len(names))
	for _, name := range names {
		if name == "" || name == lsm.DefaultColumnFamilyName {
			r.cfs = append(r.cfs, nil)
			continue
		}
		h, err := r.DB.GetColumnFamily(name)
		if err != nil {
			if h, err = r.DB.CreateColumnFamily(name, nil); err != nil {
				return err
			}
		}
		r.cfs = append(r.cfs, h)
	}
	return nil
}

// handleFor picks the family a key id belongs to.
func (r *Runner) handleFor(id uint64) *lsm.ColumnFamilyHandle {
	return r.cfs[id%uint64(len(r.cfs))]
}

// vthread is one virtual workload thread.
type vthread struct {
	id        int
	now       time.Duration
	rng       *rand.Rand
	keys      *KeyGen
	values    *ValueGen
	dist      KeyDist
	opsDone   int64
	readHist  *Histogram
	writeHist *Histogram
	readMiss  int64
	bytes     int64
	// pendingRead records whether the op just executed was a read, so the
	// measured cost lands in the right histogram.
	pendingRead bool
	// writer marks a dedicated write thread (readwhilewriting).
	writer bool
}

// Run executes the workload and returns its report.
func (r *Runner) Run() (*Report, error) {
	if err := r.Spec.Validate(); err != nil {
		return nil, err
	}
	sim, _ := r.DB.Env().(*lsm.SimEnv)
	if sim != nil {
		sim.SetForegroundThreads(r.Spec.Threads)
		defer sim.SetForegroundThreads(1)
	}
	if err := r.resolveCFs(); err != nil {
		return nil, err
	}
	if r.Spec.Preload > 0 {
		if err := r.preload(sim); err != nil {
			return nil, err
		}
	}
	// Characterize only the measured phase: preload writes would otherwise
	// swamp the ops mix of read-heavy workloads.
	r.DB.ResetWorkloadWindow()
	threads := make([]*vthread, r.Spec.Threads)
	for i := range threads {
		seed := r.Spec.Seed*7919 + int64(i)*104729 + 1
		rng := rand.New(rand.NewSource(seed))
		dist := r.Spec.dist()
		if r.Spec.Sequential {
			// Each thread owns a contiguous shard of the ascending key
			// sequence.
			dist = &SequentialDist{next: uint64(i) * uint64(r.Spec.OpsPerThread)}
		}
		threads[i] = &vthread{
			id:        i,
			rng:       rng,
			keys:      NewKeyGen(r.Spec.KeySize),
			values:    NewValueGen(rng, 0.5),
			dist:      dist,
			writer:    i < r.Spec.WriterThreads,
			readHist:  NewHistogram(),
			writeHist: NewHistogram(),
		}
	}
	var aborted bool
	var start time.Duration
	if sim != nil {
		start = sim.Now()
		aborted = r.runSim(sim, threads)
	} else {
		aborted = r.runReal(threads)
	}
	rep := &Report{
		Workload:  r.Spec.Name,
		Threads:   r.Spec.Threads,
		Read:      NewHistogram(),
		Write:     NewHistogram(),
		Aborted:   aborted,
		Metrics:   r.DB.GetMetrics(),
		ValueSize: r.Spec.ValueSize,
	}
	var maxNow time.Duration
	for _, t := range threads {
		rep.Ops += t.opsDone
		rep.Read.Merge(t.readHist)
		rep.Write.Merge(t.writeHist)
		rep.ReadMisses += t.readMiss
		rep.Bytes += t.bytes
		if t.now > maxNow {
			maxNow = t.now
		}
	}
	if sim != nil {
		rep.Elapsed = maxNow - start
		rep.SimStats = sim.Stats()
	} else {
		rep.Elapsed = r.realElapsed
	}
	if rep.Elapsed > 0 {
		rep.Throughput = float64(rep.Ops) / rep.Elapsed.Seconds()
	}
	rep.Stats = r.DB.Statistics().Snapshot()
	rep.StatsDump, _ = r.DB.GetProperty("rocksdb.stats")
	rep.HistogramDump = r.DB.Histograms().String()
	ws := r.DB.CaptureWorkloadSnapshot()
	rep.WorkloadSnap = &ws
	return rep, nil
}

// preload bulk-loads Spec.Preload keys (unmeasured) and settles compaction.
func (r *Runner) preload(sim *lsm.SimEnv) error {
	rng := rand.New(rand.NewSource(r.Spec.Seed * 31337))
	values := NewValueGen(rng, 0.5)
	keys := NewKeyGen(r.Spec.KeySize)
	wo := lsm.DefaultWriteOptions()
	batch := lsm.NewWriteBatch()
	const batchSize = 512
	// Random order, like db_bench -use_existing_db preparation via
	// fillrandom.
	perm := rng.Perm(int(r.Spec.Preload))
	for i, id := range perm {
		batch.PutCF(r.handleFor(uint64(id)), keys.Key(uint64(id)), values.Value(r.Spec.ValueSize))
		if batch.Count() >= batchSize || i == len(perm)-1 {
			if err := r.DB.Write(wo, batch); err != nil {
				return err
			}
			batch.Clear()
			if sim != nil {
				// Preload time passes on the virtual clock too.
				sim.Clock().Advance(sim.TakeOpCost())
			}
		}
	}
	if err := r.DB.Flush(); err != nil {
		return err
	}
	// Settle compactions: the paper's read/mixed workloads run against a
	// database preloaded beforehand (and therefore leveled), not against a
	// freshly-written L0 pileup. Without settling, every measured run
	// starts inside a compaction storm and the 30-second monitor cannot
	// compare configurations fairly.
	return r.DB.WaitForBackgroundIdle()
}

// runSim drives virtual threads deterministically. Returns true if the
// monitor aborted the run.
func (r *Runner) runSim(sim *lsm.SimEnv, threads []*vthread) bool {
	clock := sim.Clock()
	base := sim.Now()
	for i := range threads {
		threads[i].now = base
	}
	sim.TakeOpCost()
	total := r.Spec.TotalOps()
	var done int64
	nextTick := base + time.Second
	const perOpOverhead = 150 * time.Nanosecond // harness-side cost
	for done < total {
		// Pick the thread with the smallest virtual time that still has
		// work.
		var t *vthread
		for _, c := range threads {
			if c.opsDone >= r.Spec.OpsPerThread {
				continue
			}
			if t == nil || c.now < t.now {
				t = c
			}
		}
		if t == nil {
			break
		}
		clock.AdvanceTo(t.now)
		r.execOp(t)
		cost := sim.TakeOpCost() + perOpOverhead
		t.now += cost
		r.observe(t, cost)
		done++
		if t.now >= nextTick {
			nextTick = t.now + time.Second
			if r.Monitor != nil {
				el := t.now - base
				if !r.Monitor(Progress{Elapsed: el, OpsDone: done, Throughput: float64(done) / el.Seconds()}) {
					return true
				}
			}
		}
	}
	return false
}

// execOp issues one operation; its kind was decided by the thread's rng.
func (r *Runner) execOp(t *vthread) {
	roll := t.rng.Float64()
	isRead := roll < r.Spec.ReadFraction
	isScan := !isRead && roll < r.Spec.ReadFraction+r.Spec.ScanFraction
	if t.writer {
		isRead, isScan = false, false
	}
	id := t.dist.Next(t.rng)
	key := t.keys.Key(id)
	cf := r.handleFor(id)
	if isScan {
		it := r.DB.NewIteratorCF(nil, cf)
		it.Seek(key)
		for n := 0; n < r.Spec.ScanLength && it.Valid(); n++ {
			t.bytes += int64(len(it.Key()) + len(it.Value()))
			it.Next()
		}
		it.Close()
		t.pendingRead = true
		return
	}
	if isRead && r.Spec.MultiGetBatch > 0 {
		// readmulti: one MultiGet of K keys, grouped per column family (each
		// key id maps onto its own family, like single reads).
		perCF := make(map[int][][]byte, len(r.cfs))
		perCF[int(id%uint64(len(r.cfs)))] = [][]byte{append([]byte(nil), key...)}
		for n := 1; n < r.Spec.MultiGetBatch; n++ {
			kid := t.dist.Next(t.rng)
			perCF[int(kid%uint64(len(r.cfs)))] = append(perCF[int(kid%uint64(len(r.cfs)))],
				append([]byte(nil), t.keys.Key(kid)...))
		}
		for ci, keys := range perCF {
			vals, errs := r.DB.MultiGetCF(nil, r.cfs[ci], keys)
			for i := range keys {
				if errs[i] == lsm.ErrNotFound {
					t.readMiss++
				}
				t.bytes += int64(len(keys[i]) + len(vals[i]))
			}
		}
		t.pendingRead = true
		return
	}
	if isRead {
		_, err := r.DB.GetCF(nil, cf, key)
		if err == lsm.ErrNotFound {
			t.readMiss++
		}
		t.pendingRead = true
		t.bytes += int64(len(key))
	} else {
		n := r.Spec.ValueSize
		if r.Spec.ParetoValues {
			n = paretoValueSize(t.rng, r.Spec.ValueSize)
		}
		val := t.values.Value(n)
		_ = r.DB.PutCF(nil, cf, key, val)
		t.pendingRead = false
		t.bytes += int64(len(key) + len(val))
	}
}

// observe books the measured cost against the right histogram.
func (r *Runner) observe(t *vthread, cost time.Duration) {
	if t.pendingRead {
		t.readHist.Add(cost)
	} else {
		t.writeHist.Add(cost)
	}
	t.opsDone++
}

// runReal drives OS-mode threads with goroutines and wall-clock timing.
func (r *Runner) runReal(threads []*vthread) bool {
	start := time.Now()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var stopOnce sync.Once
	abort := func() { stopOnce.Do(func() { close(stop) }) }
	var monMu sync.Mutex
	var doneOps int64
	aborted := false
	for _, t := range threads {
		wg.Add(1)
		go func(t *vthread) {
			defer wg.Done()
			for t.opsDone < r.Spec.OpsPerThread {
				select {
				case <-stop:
					return
				default:
				}
				opStart := time.Now()
				r.execOp(t)
				cost := time.Since(opStart)
				t.now = time.Since(start)
				r.observe(t, cost)
				monMu.Lock()
				doneOps++
				d := doneOps
				monMu.Unlock()
				if r.Monitor != nil && d%4096 == 0 {
					el := time.Since(start)
					if !r.Monitor(Progress{Elapsed: el, OpsDone: d, Throughput: float64(d) / el.Seconds()}) {
						monMu.Lock()
						aborted = true
						monMu.Unlock()
						abort()
						return
					}
				}
			}
		}(t)
	}
	wg.Wait()
	r.realElapsed = time.Since(start)
	return aborted
}
