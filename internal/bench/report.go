package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/lsm"
)

// Report is the outcome of one benchmark run. It carries both structured
// metrics (consumed by the Active Flagger) and a db_bench-style text
// rendering (embedded in LLM prompts, like the paper's benchmark output).
type Report struct {
	Workload   string
	Threads    int
	Ops        int64
	Bytes      int64
	Elapsed    time.Duration
	Throughput float64 // ops/sec
	Read       *Histogram
	Write      *Histogram
	ReadMisses int64
	Aborted    bool
	ValueSize  int

	Metrics  lsm.Metrics
	SimStats lsm.SimStats
	Stats    map[string]int64

	// StatsDump is the engine's rocksdb.stats property text at the end of
	// the run (per-level compaction-stats table included). HistogramDump is
	// the engine histograms' RocksDB-style P50/P95/P99 lines. Both feed the
	// tuning loop's trace and the LLM prompt; neither is part of Format()
	// because flagger.ParseReportText keys off the P99 lines there.
	StatsDump     string
	HistogramDump string

	// WorkloadSnap characterizes the traffic the engine actually served
	// during the run (ops mix, per-CF shares, write-amp, stall fraction);
	// the tuning loop feeds it to the prompt and scores drift across
	// iterations.
	WorkloadSnap *lsm.WorkloadSnapshot
}

// MicrosPerOp returns the mean operation latency in microseconds.
func (r *Report) MicrosPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return r.Elapsed.Seconds() * 1e6 / float64(r.Ops)
}

// MBPerSec returns user data bandwidth in MB/s.
func (r *Report) MBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// P99Read and P99Write return tail latencies in microseconds (0 if the side
// saw no operations).
func (r *Report) P99Read() float64  { return r.Read.P99() }
func (r *Report) P99Write() float64 { return r.Write.P99() }

// Format renders the report in db_bench style: the summary line the paper's
// parser extracts, latency histograms, and level/statistics context.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s : %11.3f micros/op %.0f ops/sec; %6.1f MB/s",
		r.Workload, r.MicrosPerOp(), r.Throughput, r.MBPerSec())
	if r.ReadMisses > 0 {
		reads := r.Read.Count()
		fmt.Fprintf(&b, " (%d of %d found)", reads-r.ReadMisses, reads)
	}
	if r.Aborted {
		b.WriteString(" [ABORTED EARLY]")
	}
	b.WriteString("\n")
	if r.Write.Count() > 0 {
		fmt.Fprintf(&b, "Microseconds per write:\n%s", r.Write.String())
	}
	if r.Read.Count() > 0 {
		fmt.Fprintf(&b, "Microseconds per read:\n%s", r.Read.String())
	}
	fmt.Fprintf(&b, "Level files: %v\n", r.Metrics.LevelFiles)
	fmt.Fprintf(&b, "Pending compaction bytes: %d\n", r.Metrics.PendingCompactionBytes)
	if r.Stats != nil {
		for _, k := range []string{
			"rocksdb.stall.micros",
			"rocksdb.stall.slowdown.writes",
			"rocksdb.stall.stopped.writes",
			"rocksdb.block.cache.hit",
			"rocksdb.block.cache.miss",
			"rocksdb.bloom.filter.useful",
			"rocksdb.compaction.count",
			"rocksdb.flush.count",
		} {
			if v, ok := r.Stats[k]; ok {
				fmt.Fprintf(&b, "%s COUNT : %d\n", k, v)
			}
		}
	}
	return b.String()
}

// Summary is the compact one-line form used in logs.
func (r *Report) Summary() string {
	return fmt.Sprintf("%s: %.0f ops/sec, p99(write)=%.2fus, p99(read)=%.2fus",
		r.Workload, r.Throughput, r.P99Write(), r.P99Read())
}
