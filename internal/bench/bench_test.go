package bench

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/device"
	"repro/internal/lsm"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); m < 49 || m > 52 {
		t.Fatalf("mean = %v", m)
	}
	if p := h.P50(); p < 40 || p > 60 {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.P99(); p < 90 || p > 101 {
		t.Fatalf("p99 = %v", p)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.StdDev() <= 0 {
		t.Fatal("stddev")
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 50; i++ {
		a.Add(10 * time.Microsecond)
		b.Add(1000 * time.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("count = %d", a.Count())
	}
	if p := a.P99(); p < 900 {
		t.Fatalf("p99 after merge = %v", p)
	}
	a.Merge(nil) // nil-safe
}

// TestQuickHistogramPercentileMonotone: percentiles are monotone in p and
// bounded by min/max.
func TestQuickHistogramPercentileMonotone(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		n := 1 + r.Intn(500)
		for i := 0; i < n; i++ {
			h.Add(time.Duration(1+r.Intn(1_000_000)) * time.Microsecond)
		}
		prev := 0.0
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 99.9} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(100) <= h.Max()+1e-9 && h.Percentile(1) >= h.Min()-1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyGen(t *testing.T) {
	g := NewKeyGen(16)
	k := g.Key(42)
	if string(k) != "0000000000000042" {
		t.Fatalf("key = %q", k)
	}
	if len(g.Key(999999999)) != 16 {
		t.Fatal("wrong width")
	}
	g2 := NewKeyGen(4) // clamps to 16
	if len(g2.Key(1)) != 16 {
		t.Fatal("min width not enforced")
	}
}

func TestValueGen(t *testing.T) {
	g := NewValueGen(rand.New(rand.NewSource(1)), 0.5)
	v1 := append([]byte(nil), g.Value(100)...)
	v2 := g.Value(100)
	if len(v1) != 100 || len(v2) != 100 {
		t.Fatal("wrong lengths")
	}
	if string(v1) == string(v2) {
		t.Fatal("values should differ between calls")
	}
}

func TestUniformDist(t *testing.T) {
	d := UniformDist{N: 100}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if id := d.Next(r); id >= 100 {
			t.Fatalf("id %d out of range", id)
		}
	}
	if d.Name() != "uniform" {
		t.Fatal(d.Name())
	}
}

func TestZipfDistSkew(t *testing.T) {
	const n = 100000
	d := NewZipfDist(n, 0.99)
	r := rand.New(rand.NewSource(7))
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		id := d.Next(r)
		if id >= n {
			t.Fatalf("id %d out of range", id)
		}
		counts[id]++
	}
	// Skew: the top 1% of distinct keys drawn should hold a large share.
	var max int
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < draws/100 {
		t.Fatalf("hottest key only %d/%d draws; distribution not skewed", max, draws)
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct keys drawn", len(counts))
	}
}

func TestSequentialDist(t *testing.T) {
	d := &SequentialDist{}
	for i := uint64(0); i < 5; i++ {
		if got := d.Next(nil); got != i {
			t.Fatalf("Next = %d, want %d", got, i)
		}
	}
}

func TestParetoValueSize(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var sum int
	for i := 0; i < 10000; i++ {
		n := paretoValueSize(r, 400)
		if n < 16 || n > 400*16 {
			t.Fatalf("size %d out of bounds", n)
		}
		sum += n
	}
	mean := sum / 10000
	if mean < 200 || mean > 1200 {
		t.Fatalf("mean value size %d implausible", mean)
	}
}

func TestSpecValidate(t *testing.T) {
	good := FillRandom(100, 100, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []*Spec{
		{Name: "x", Threads: 0, OpsPerThread: 1, KeySpace: 1, ValueSize: 1},
		{Name: "x", Threads: 1, OpsPerThread: 0, KeySpace: 1, ValueSize: 1},
		{Name: "x", Threads: 1, OpsPerThread: 1, KeySpace: 0, ValueSize: 1},
		{Name: "x", Threads: 1, OpsPerThread: 1, KeySpace: 1, ValueSize: 0},
		{Name: "x", Threads: 1, OpsPerThread: 1, KeySpace: 1, ValueSize: 1, ReadFraction: 2},
	}
	for i, s := range bads {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestWorkloadByName(t *testing.T) {
	for _, name := range []string{"fillrandom", "readrandom", "readrandomwriterandom", "mixgraph"} {
		s, err := WorkloadByName(name, 1000, 100, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := WorkloadByName("ycsb", 10, 10, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// openBenchDB opens a sim DB for runner tests.
func openBenchDB(t testing.TB, dev *device.Model, prof device.Profile, opts *lsm.Options) (*lsm.DB, *lsm.SimEnv) {
	t.Helper()
	env := lsm.NewSimEnv(dev, prof, 11)
	if opts == nil {
		opts = lsm.DBBenchDefaults()
	}
	opts = opts.Clone()
	opts.Env = env
	db, err := lsm.Open("/bench", opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, env
}

func TestRunnerFillRandom(t *testing.T) {
	opts := lsm.DBBenchDefaults()
	opts.WriteBufferSize = 256 << 10
	db, _ := openBenchDB(t, device.NVMe(), device.Profile4C8G(), opts)
	defer db.Close()
	spec := FillRandom(20000, 400, 3)
	rep, err := (&Runner{DB: db, Spec: spec}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 20000 {
		t.Fatalf("ops = %d", rep.Ops)
	}
	if rep.Throughput <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("throughput=%v elapsed=%v", rep.Throughput, rep.Elapsed)
	}
	if rep.Write.Count() != 20000 || rep.Read.Count() != 0 {
		t.Fatalf("histogram counts: w=%d r=%d", rep.Write.Count(), rep.Read.Count())
	}
	if rep.Stats["rocksdb.flush.count"] == 0 {
		t.Fatal("no flushes with a 256KiB buffer and 8MB+ of writes")
	}
	out := rep.Format()
	for _, want := range []string{"fillrandom", "ops/sec", "Microseconds per write", "Level files"} {
		if !contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunnerReadRandom(t *testing.T) {
	opts := lsm.DBBenchDefaults()
	opts.WriteBufferSize = 256 << 10
	db, _ := openBenchDB(t, device.NVMe(), device.Profile4C8G(), opts)
	defer db.Close()
	spec := ReadRandom(5000, 10000, 400, 3)
	rep, err := (&Runner{DB: db, Spec: spec}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Read.Count() != 5000 || rep.Write.Count() != 0 {
		t.Fatalf("histogram counts: w=%d r=%d", rep.Write.Count(), rep.Read.Count())
	}
	if rep.ReadMisses != 0 {
		t.Fatalf("%d read misses against a fully preloaded space", rep.ReadMisses)
	}
}

func TestRunnerMixedAndMonitor(t *testing.T) {
	opts := lsm.DBBenchDefaults()
	opts.WriteBufferSize = 256 << 10
	db, _ := openBenchDB(t, device.NVMe(), device.Profile4C8G(), opts)
	defer db.Close()
	spec := ReadRandomWriteRandom(20000, 200, 3)
	ticks := 0
	rep, err := (&Runner{DB: db, Spec: spec, Monitor: func(p Progress) bool {
		ticks++
		return true
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Read.Count() == 0 || rep.Write.Count() == 0 {
		t.Fatalf("mixed run missing a side: w=%d r=%d", rep.Write.Count(), rep.Read.Count())
	}
	frac := float64(rep.Read.Count()) / float64(rep.Ops)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("read fraction = %v, want ~0.9", frac)
	}
}

func TestRunnerMonitorAbort(t *testing.T) {
	opts := lsm.DBBenchDefaults()
	opts.WriteBufferSize = 256 << 10
	db, _ := openBenchDB(t, device.SATAHDD(), device.Profile2C4G(), opts)
	defer db.Close()
	spec := FillRandom(200000, 400, 3)
	rep, err := (&Runner{DB: db, Spec: spec, Monitor: func(p Progress) bool {
		return p.Elapsed < 2*time.Second // abort after 2 virtual seconds
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted {
		t.Fatal("monitor abort not honored")
	}
	if rep.Ops >= spec.TotalOps() {
		t.Fatal("run completed despite abort")
	}
}

func TestRunnerDeterministic(t *testing.T) {
	run := func() *Report {
		opts := lsm.DBBenchDefaults()
		opts.WriteBufferSize = 256 << 10
		db, _ := openBenchDB(t, device.NVMe(), device.Profile4C8G(), opts)
		defer db.Close()
		rep, err := (&Runner{DB: db, Spec: Mixgraph(10000, 200, 5)}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.Elapsed != b.Elapsed ||
		a.Read.P99() != b.Read.P99() || a.Write.P99() != b.Write.P99() {
		t.Fatalf("simulation not deterministic:\n%s\n%s", a.Summary(), b.Summary())
	}
}

func TestRunnerHDDSlowerThanNVMe(t *testing.T) {
	run := func(dev *device.Model) *Report {
		opts := lsm.DBBenchDefaults()
		opts.WriteBufferSize = 512 << 10
		db, _ := openBenchDB(t, dev, device.Profile4C4G(), opts)
		defer db.Close()
		rep, err := (&Runner{DB: db, Spec: FillRandom(30000, 400, 5)}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	nvme := run(device.NVMe())
	hdd := run(device.SATAHDD())
	if hdd.Throughput >= nvme.Throughput {
		t.Fatalf("HDD (%.0f ops/s) should be slower than NVMe (%.0f ops/s)",
			hdd.Throughput, nvme.Throughput)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// openOSBenchDB opens a DB on the real filesystem for parallel benchmarks
// (b.RunParallel needs real goroutine concurrency, not the sim event loop).
func openOSBenchDB(b *testing.B, tweak func(*lsm.Options)) *lsm.DB {
	b.Helper()
	opts := lsm.DefaultOptions()
	opts.WriteBufferSize = 8 << 20
	opts.DisableInfoLog = true
	if tweak != nil {
		tweak(opts)
	}
	db, err := lsm.Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkWriteParallel measures the group-commit write pipeline under
// contending goroutines. -cpu 1,4,8 varies the writer count; toggle the
// pipeline knobs via the closure to compare configurations.
func BenchmarkWriteParallel(b *testing.B) {
	for _, cfg := range []struct {
		name       string
		concurrent bool
		pipelined  bool
	}{
		{"serialized", false, false},
		{"concurrent", true, false},
		{"concurrent-pipelined", true, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db := openOSBenchDB(b, func(o *lsm.Options) {
				o.AllowConcurrentMemtableWrite = cfg.concurrent
				o.EnablePipelinedWrite = cfg.pipelined
				// Microbench the write pipeline itself, not the compaction
				// backlog it eventually builds.
				o.WriteBufferSize = 64 << 20
				o.DisableAutoCompactions = true
			})
			defer db.Close()
			var ctr int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// KeyGen reuses its buffer: one per worker goroutine, and
				// one WriteBatch reused via Clear (Write leaves the batch
				// reusable once it returns).
				kg := NewKeyGen(16)
				rng := rand.New(rand.NewSource(atomicAdd(&ctr, 1)))
				val := make([]byte, 128)
				wo := lsm.DefaultWriteOptions()
				batch := lsm.NewWriteBatch()
				for pb.Next() {
					batch.Clear()
					for k := 0; k < 4; k++ {
						batch.Put(kg.Key(rng.Uint64()%1e6), val)
					}
					if err := db.Write(wo, batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkGetParallel measures concurrent point reads against a preloaded
// memtable + L0 working set (the lock-free skiplist read path).
func BenchmarkGetParallel(b *testing.B) {
	db := openOSBenchDB(b, nil)
	defer db.Close()
	kg := NewKeyGen(16)
	wo := lsm.DefaultWriteOptions()
	const keys = 50000
	for i := 0; i < keys; i += 512 {
		batch := lsm.NewWriteBatch()
		for j := i; j < i+512 && j < keys; j++ {
			batch.Put(kg.Key(uint64(j)), make([]byte, 128))
		}
		if err := db.Write(wo, batch); err != nil {
			b.Fatal(err)
		}
	}
	var ctr int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// KeyGen reuses its buffer: one per worker goroutine.
		kg := NewKeyGen(16)
		rng := rand.New(rand.NewSource(atomicAdd(&ctr, 1)))
		for pb.Next() {
			if _, err := db.Get(nil, kg.Key(rng.Uint64()%keys)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func atomicAdd(p *int64, d int64) int64 { return atomic.AddInt64(p, d) }
