package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/server"
)

// NetRunner executes a Spec against a kvserver over the network instead of
// an embedded DB: dbbench's -server mode. It opens Connections pipelined
// client connections and multiplexes Pipeline worker goroutines onto each,
// so with C connections and depth D there are C*D concurrent requests in
// flight and every connection stays D-deep pipelined. Keys route to server
// shards by hash; the same Spec fields (read fraction, scans, multiget
// batches, column families) drive the op mix.
type NetRunner struct {
	Addr        string
	Connections int
	// Pipeline is the number of worker goroutines sharing each connection
	// (the per-connection pipeline depth). Default 4.
	Pipeline int
	Spec     *Spec
	Monitor  func(Progress) bool
}

// netWorker is one workload goroutine bound to a shared client connection.
type netWorker struct {
	c         *server.Client
	rng       *rand.Rand
	keys      *KeyGen
	values    *ValueGen
	dist      KeyDist
	ops       int64
	opsDone   int64
	readHist  *Histogram
	writeHist *Histogram
	readMiss  int64
	bytes     int64
}

// cfName maps a key id onto the Spec's column-family list ("" = default).
func (r *NetRunner) cfName(id uint64) string {
	cfs := r.Spec.ColumnFamilies
	if len(cfs) == 0 {
		return ""
	}
	return cfs[id%uint64(len(cfs))]
}

// Run connects, preloads (unmeasured), executes the measured phase and
// returns a report whose StatsDump is the server's aggregated stats text.
func (r *NetRunner) Run() (*Report, error) {
	if err := r.Spec.Validate(); err != nil {
		return nil, err
	}
	conns := r.Connections
	if conns < 1 {
		conns = 1
	}
	depth := r.Pipeline
	if depth < 1 {
		depth = 4
	}
	clients := make([]*server.Client, conns)
	for i := range clients {
		c, err := server.Dial(r.Addr)
		if err != nil {
			for _, open := range clients[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("bench: dial %s: %w", r.Addr, err)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	if r.Spec.Preload > 0 {
		if err := r.preload(clients); err != nil {
			return nil, err
		}
	}

	workers := make([]*netWorker, conns*depth)
	total := r.Spec.TotalOps()
	per := total / int64(len(workers))
	rem := total % int64(len(workers))
	for i := range workers {
		seed := r.Spec.Seed*7919 + int64(i)*104729 + 1
		rng := rand.New(rand.NewSource(seed))
		dist := r.Spec.dist()
		if r.Spec.Sequential {
			dist = &SequentialDist{next: uint64(i) * uint64(per+1)}
		}
		ops := per
		if int64(i) < rem {
			ops++
		}
		workers[i] = &netWorker{
			c:         clients[i%conns],
			rng:       rng,
			keys:      NewKeyGen(r.Spec.KeySize),
			values:    NewValueGen(rng, 0.5),
			dist:      dist,
			ops:       ops,
			readHist:  NewHistogram(),
			writeHist: NewHistogram(),
		}
	}

	start := time.Now()
	aborted := r.drive(workers)
	elapsed := time.Since(start)

	rep := &Report{
		Workload:  r.Spec.Name + "/net",
		Threads:   len(workers),
		Read:      NewHistogram(),
		Write:     NewHistogram(),
		Aborted:   aborted,
		ValueSize: r.Spec.ValueSize,
		Elapsed:   elapsed,
	}
	for _, w := range workers {
		rep.Ops += w.opsDone
		rep.Read.Merge(w.readHist)
		rep.Write.Merge(w.writeHist)
		rep.ReadMisses += w.readMiss
		rep.Bytes += w.bytes
	}
	if rep.Elapsed > 0 {
		rep.Throughput = float64(rep.Ops) / rep.Elapsed.Seconds()
	}
	if text, err := clients[0].Stats(); err == nil {
		rep.StatsDump = text
	}
	return rep, nil
}

// preload bulk-loads the key space through Batch frames, split round-robin
// across every connection so the load phase is parallel too.
func (r *NetRunner) preload(clients []*server.Client) error {
	const batchSize = 512
	var wg sync.WaitGroup
	errc := make(chan error, len(clients))
	perClient := r.Spec.Preload / uint64(len(clients))
	for ci, c := range clients {
		lo := uint64(ci) * perClient
		hi := lo + perClient
		if ci == len(clients)-1 {
			hi = r.Spec.Preload
		}
		wg.Add(1)
		go func(ci int, c *server.Client, lo, hi uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.Spec.Seed*31337 + int64(ci)))
			values := NewValueGen(rng, 0.5)
			keys := NewKeyGen(r.Spec.KeySize)
			// Per-slot key/value buffers reused across batches: the key and
			// value generators recycle their own buffers, so each entry
			// needs a private copy, but Batch encodes the frame before
			// returning, after which the slot buffers are free again.
			keyBufs := make([][]byte, batchSize)
			valBufs := make([][]byte, batchSize)
			entries := make([]server.BatchEntry, 0, batchSize)
			for id := lo; id < hi; id++ {
				slot := len(entries)
				keyBufs[slot] = append(keyBufs[slot][:0], keys.Key(id)...)
				valBufs[slot] = append(valBufs[slot][:0], values.Value(r.Spec.ValueSize)...)
				entries = append(entries, server.BatchEntry{
					CF:    r.cfName(id),
					Key:   keyBufs[slot],
					Value: valBufs[slot],
				})
				if len(entries) >= batchSize || id == hi-1 {
					if err := c.Batch(entries); err != nil {
						errc <- err
						return
					}
					entries = entries[:0]
				}
			}
		}(ci, c, lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return fmt.Errorf("bench: preload: %w", err)
	default:
		return nil
	}
}

// drive runs every worker goroutine to completion, sampling progress for the
// monitor. Returns true if the monitor aborted the run.
func (r *NetRunner) drive(workers []*netWorker) bool {
	start := time.Now()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var stopOnce sync.Once
	abort := func() { stopOnce.Do(func() { close(stop) }) }
	var monMu sync.Mutex
	var doneOps int64
	aborted := false
	for _, w := range workers {
		wg.Add(1)
		go func(w *netWorker) {
			defer wg.Done()
			for w.opsDone < w.ops {
				select {
				case <-stop:
					return
				default:
				}
				opStart := time.Now()
				isRead := r.execOp(w)
				cost := time.Since(opStart)
				if isRead {
					w.readHist.Add(cost)
				} else {
					w.writeHist.Add(cost)
				}
				w.opsDone++
				monMu.Lock()
				doneOps++
				d := doneOps
				monMu.Unlock()
				if r.Monitor != nil && d%4096 == 0 {
					el := time.Since(start)
					if !r.Monitor(Progress{Elapsed: el, OpsDone: d, Throughput: float64(d) / el.Seconds()}) {
						monMu.Lock()
						aborted = true
						monMu.Unlock()
						abort()
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return aborted
}

// execOp issues one operation over the worker's connection; reports whether
// it counted as a read.
func (r *NetRunner) execOp(w *netWorker) bool {
	roll := w.rng.Float64()
	isRead := roll < r.Spec.ReadFraction
	isScan := !isRead && roll < r.Spec.ReadFraction+r.Spec.ScanFraction
	id := w.dist.Next(w.rng)
	key := w.keys.Key(id)
	cf := r.cfName(id)
	switch {
	case isScan:
		pairs, err := w.c.Scan(cf, key, r.Spec.ScanLength)
		if err == nil {
			for _, kv := range pairs {
				w.bytes += int64(len(kv.Key) + len(kv.Value))
			}
		}
		return true
	case isRead && r.Spec.MultiGetBatch > 0:
		// One MultiGet frame of K keys; the server fans it out across its
		// shards and gathers positionally.
		keys := make([][]byte, r.Spec.MultiGetBatch)
		keys[0] = append([]byte(nil), key...)
		for i := 1; i < len(keys); i++ {
			keys[i] = append([]byte(nil), w.keys.Key(w.dist.Next(w.rng))...)
		}
		vals, errs := w.c.MultiGet(cf, keys)
		for i := range keys {
			if errs[i] != nil {
				w.readMiss++
			}
			w.bytes += int64(len(keys[i]) + len(vals[i]))
		}
		return true
	case isRead:
		v, err := w.c.Get(cf, key)
		if err != nil {
			w.readMiss++
		}
		w.bytes += int64(len(key) + len(v))
		return true
	default:
		n := r.Spec.ValueSize
		if r.Spec.ParetoValues {
			n = paretoValueSize(w.rng, r.Spec.ValueSize)
		}
		val := w.values.Value(n)
		if err := w.c.Put(cf, key, val); err == nil {
			w.bytes += int64(len(key) + len(val))
		}
		return false
	}
}
