package bench

import (
	"fmt"
	"math"
	"math/rand"
)

// Spec describes one benchmark run, mirroring the db_bench flags the paper
// uses (-benchmarks, -num, -reads, -threads, -value_size, -key_size).
type Spec struct {
	Name         string
	Threads      int
	OpsPerThread int64
	KeySize      int
	ValueSize    int
	// KeySpace is the number of distinct keys addressed.
	KeySpace uint64
	// ReadFraction of operations are Gets (remainder are Puts).
	ReadFraction float64
	// Zipfian selects the mixgraph-style skewed key popularity; otherwise
	// keys are uniform.
	Zipfian   bool
	ZipfTheta float64
	// Preload loads this many keys (batched, unmeasured) before the run.
	Preload uint64
	// ParetoValues draws value sizes from a bounded Pareto distribution
	// around ValueSize (mixgraph behaviour).
	ParetoValues bool
	// Sequential writes keys in ascending order (fillseq).
	Sequential bool
	// ScanFraction of operations are range scans of ScanLength entries
	// (seekrandom); reads+scans+writes partition the op mix.
	ScanFraction float64
	ScanLength   int
	// WriterThreads dedicates the first N threads to pure writes while the
	// rest follow ReadFraction (readwhilewriting).
	WriterThreads int
	// MultiGetBatch > 0 turns each read operation into a MultiGet of that
	// many keys drawn from the key distribution (readmulti). Against a
	// sharded server this exercises the cross-shard fan-out/gather path.
	MultiGetBatch int
	// Seed drives all workload randomness.
	Seed int64
	// ColumnFamilies routes traffic across named families: each key id maps
	// deterministically onto one of the listed families (id mod len), like
	// db_bench's -num_column_families. Empty (or "default"/"") entries mean
	// the default family; an empty list is the single-family workload.
	// Families missing from the DB are created at run start.
	ColumnFamilies []string
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	if s.Threads < 1 {
		return fmt.Errorf("bench: threads must be >= 1")
	}
	if s.OpsPerThread < 1 {
		return fmt.Errorf("bench: ops_per_thread must be >= 1")
	}
	if s.KeySpace == 0 {
		return fmt.Errorf("bench: key space must be non-empty")
	}
	if s.ReadFraction < 0 || s.ReadFraction > 1 {
		return fmt.Errorf("bench: read fraction %v out of [0,1]", s.ReadFraction)
	}
	if s.ScanFraction < 0 || s.ScanFraction+s.ReadFraction > 1 {
		return fmt.Errorf("bench: scan fraction %v out of range", s.ScanFraction)
	}
	if s.ScanFraction > 0 && s.ScanLength < 1 {
		return fmt.Errorf("bench: scan_length must be >= 1 with scans")
	}
	if s.WriterThreads < 0 || s.WriterThreads > s.Threads {
		return fmt.Errorf("bench: writer_threads %d out of [0,%d]", s.WriterThreads, s.Threads)
	}
	if s.ValueSize <= 0 {
		return fmt.Errorf("bench: value_size must be positive")
	}
	if s.MultiGetBatch < 0 {
		return fmt.Errorf("bench: multiget batch %d negative", s.MultiGetBatch)
	}
	return nil
}

// TotalOps returns the op count across threads.
func (s *Spec) TotalOps() int64 { return int64(s.Threads) * s.OpsPerThread }

// DistFor exposes the spec's key distribution (trace generation reuses the
// exact stream the live runner would issue).
func DistFor(s *Spec) KeyDist {
	if s.Sequential {
		return &SequentialDist{}
	}
	return s.dist()
}

// dist builds the key distribution for one thread.
func (s *Spec) dist() KeyDist {
	if s.Zipfian {
		theta := s.ZipfTheta
		if theta == 0 {
			theta = 0.99
		}
		return NewZipfDist(s.KeySpace, theta)
	}
	return UniformDist{N: s.KeySpace}
}

// The paper's four workloads (§5.1), at a configurable scale. scale=1.0
// reproduces the paper's op counts (50M/10M/25M); the experiments default
// to a laptop-friendly fraction.

// FillRandom writes num KV pairs in random key order (write-intensive).
func FillRandom(num int64, valueSize int, seed int64) *Spec {
	return &Spec{
		Name:         "fillrandom",
		Threads:      1,
		OpsPerThread: num,
		KeySize:      16,
		ValueSize:    valueSize,
		KeySpace:     uint64(num),
		ReadFraction: 0,
		Seed:         seed,
	}
}

// ReadRandom reads `reads` keys uniformly from a database preloaded with
// `preload` KV pairs (read-intensive).
func ReadRandom(reads int64, preload uint64, valueSize int, seed int64) *Spec {
	return &Spec{
		Name:         "readrandom",
		Threads:      1,
		OpsPerThread: reads,
		KeySize:      16,
		ValueSize:    valueSize,
		KeySpace:     preload,
		ReadFraction: 1,
		Preload:      preload,
		Seed:         seed,
	}
}

// ReadRandomWriteRandom runs two threads interleaving reads and writes
// (db_bench default is 90% reads).
func ReadRandomWriteRandom(totalOps int64, valueSize int, seed int64) *Spec {
	keySpace := uint64(totalOps)
	if keySpace < 1 {
		keySpace = 1
	}
	return &Spec{
		Name:         "readrandomwriterandom",
		Threads:      2,
		OpsPerThread: totalOps / 2,
		KeySize:      16,
		ValueSize:    valueSize,
		KeySpace:     keySpace,
		ReadFraction: 0.9,
		// db_bench runs readrandomwriterandom against a fully loaded key
		// space (the paper preloads the database before the mixed run).
		Preload: keySpace,
		Seed:    seed,
	}
}

// Mixgraph approximates the Facebook production mix (Cao et al. FAST'20)
// the paper configures at 50% reads / 50% writes: Zipfian hot keys and
// Pareto value sizes.
func Mixgraph(totalOps int64, valueSize int, seed int64) *Spec {
	keySpace := uint64(totalOps)
	if keySpace < 1 {
		keySpace = 1
	}
	return &Spec{
		Name:         "mixgraph",
		Threads:      1,
		OpsPerThread: totalOps,
		KeySize:      16,
		ValueSize:    valueSize,
		KeySpace:     keySpace,
		ReadFraction: 0.5,
		Zipfian:      true,
		ZipfTheta:    0.99,
		Preload:      keySpace / 2,
		ParetoValues: true,
		Seed:         seed,
	}
}

// FillSeq writes num KV pairs in ascending key order — the cheapest load
// path (no compaction overlap).
func FillSeq(num int64, valueSize int, seed int64) *Spec {
	s := FillRandom(num, valueSize, seed)
	s.Name = "fillseq"
	s.Sequential = true
	return s
}

// Overwrite rewrites random keys of a fully preloaded key space.
func Overwrite(num int64, valueSize int, seed int64) *Spec {
	s := FillRandom(num, valueSize, seed)
	s.Name = "overwrite"
	s.Preload = s.KeySpace
	return s
}

// SeekRandom seeks to random keys and iterates scanLength entries.
func SeekRandom(num int64, scanLength, valueSize int, seed int64) *Spec {
	keySpace := uint64(num)
	if keySpace < 1 {
		keySpace = 1
	}
	return &Spec{
		Name:         "seekrandom",
		Threads:      1,
		OpsPerThread: num,
		KeySize:      16,
		ValueSize:    valueSize,
		KeySpace:     keySpace,
		ScanFraction: 1,
		ScanLength:   scanLength,
		Preload:      keySpace,
		Seed:         seed,
	}
}

// ReadMulti reads `reads` batches of `batch` keys each via MultiGet from a
// preloaded database — the MultiGet (and, over the network, cross-shard
// fan-out/gather) counterpart of readrandom.
func ReadMulti(reads int64, preload uint64, batch, valueSize int, seed int64) *Spec {
	s := ReadRandom(reads, preload, valueSize, seed)
	s.Name = "readmulti"
	s.MultiGetBatch = batch
	return s
}

// ReadWhileWriting runs one dedicated writer thread against reader threads,
// db_bench style.
func ReadWhileWriting(totalOps int64, valueSize int, seed int64) *Spec {
	keySpace := uint64(totalOps)
	if keySpace < 1 {
		keySpace = 1
	}
	return &Spec{
		Name:          "readwhilewriting",
		Threads:       3,
		OpsPerThread:  totalOps / 3,
		KeySize:       16,
		ValueSize:     valueSize,
		KeySpace:      keySpace,
		ReadFraction:  1, // non-writer threads read only
		WriterThreads: 1,
		Preload:       keySpace,
		Seed:          seed,
	}
}

// WorkloadByName builds a workload by db_bench name. num scales the
// operation count; valueSize is the base value size.
func WorkloadByName(name string, num int64, valueSize int, seed int64) (*Spec, error) {
	switch name {
	case "fillrandom", "FR", "fr":
		return FillRandom(num, valueSize, seed), nil
	case "fillseq":
		return FillSeq(num, valueSize, seed), nil
	case "overwrite":
		return Overwrite(num, valueSize, seed), nil
	case "readrandom", "RR", "rr":
		return ReadRandom(num, uint64(num)*5/2, valueSize, seed), nil
	case "readrandomwriterandom", "RRWR", "rrwr":
		return ReadRandomWriteRandom(num, valueSize, seed), nil
	case "mixgraph", "MG", "mixgraph50":
		return Mixgraph(num, valueSize, seed), nil
	case "seekrandom":
		return SeekRandom(num, 10, valueSize, seed), nil
	case "readmulti", "multireadrandom":
		return ReadMulti(num, uint64(num)*5/2, 8, valueSize, seed), nil
	case "readwhilewriting":
		return ReadWhileWriting(num, valueSize, seed), nil
	default:
		return nil, fmt.Errorf("bench: unknown workload %q", name)
	}
}

// paretoValueSize draws a bounded Pareto value size with the given mean-ish
// scale (db_bench mixgraph value_theta behaviour, simplified).
func paretoValueSize(r *rand.Rand, base int) int {
	// alpha chosen so the mean is ~1.5x the base with a heavy tail.
	const alpha = 2.0
	u := r.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	v := float64(base) * 0.7 / math.Pow(u, 1/alpha)
	n := int(v)
	if n < 16 {
		n = 16
	}
	if n > base*16 {
		n = base * 16
	}
	return n
}
