// Package bench reimplements the db_bench workloads the paper evaluates:
// fillrandom, readrandom, readrandomwriterandom and mixgraph, with
// db_bench-style latency histograms and reports. In simulation mode the
// runner is a deterministic event loop over virtual threads driven by the
// engine's virtual clock.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram collects latency observations into exponential buckets, in the
// spirit of RocksDB's HistogramImpl.
//
// NOT safe for concurrent use: Add, Merge and the readers race if shared
// across goroutines. The runner honors this by giving each virtual thread
// (and each OS-mode goroutine) its own Histogram and merging them only
// after every worker has finished. Code that needs a concurrently-writable
// histogram should use lsm.HistogramStats, whose recorders are atomic.
type Histogram struct {
	buckets []int64 // bucket i covers [limit(i-1), limit(i))
	limits  []float64
	count   int64
	sum     float64
	sumSq   float64
	min     float64
	max     float64
}

// histogram bucket limits: 1..10^9 microseconds, ~7% growth per bucket.
var bucketLimits = func() []float64 {
	var out []float64
	v := 1.0
	for v < 1e9 {
		out = append(out, v)
		v *= 1.07
	}
	return append(out, math.MaxFloat64)
}()

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		buckets: make([]int64, len(bucketLimits)),
		limits:  bucketLimits,
		min:     math.MaxFloat64,
	}
}

// Add records one latency observation.
func (h *Histogram) Add(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	idx := sort.SearchFloat64s(h.limits, us)
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.count++
	h.sum += us
	h.sumSq += us * us
	if us < h.min {
		h.min = us
	}
	if us > h.max {
		h.max = us
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
	h.sumSq += other.sumSq
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average latency in microseconds.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return extremes in microseconds (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the maximum observation in microseconds.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// StdDev returns the standard deviation in microseconds.
func (h *Histogram) StdDev() float64 {
	if h.count == 0 {
		return 0
	}
	mean := h.Mean()
	v := h.sumSq/float64(h.count) - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Percentile returns the p-th percentile (p in (0,100]) in microseconds by
// linear interpolation inside the covering bucket, like RocksDB.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	threshold := float64(h.count) * p / 100
	var cum float64
	for i, c := range h.buckets {
		cum += float64(c)
		if cum >= threshold {
			lo := 0.0
			if i > 0 {
				lo = h.limits[i-1]
			}
			hi := h.limits[i]
			if hi > h.max {
				hi = h.max
			}
			if c == 0 {
				return hi
			}
			// Interpolate within the bucket.
			left := threshold - (cum - float64(c))
			r := lo + (hi-lo)*left/float64(c)
			if r < h.min {
				r = h.min
			}
			return r
		}
	}
	return h.max
}

// P50, P99 and P999 are convenience accessors (microseconds).
func (h *Histogram) P50() float64  { return h.Percentile(50) }
func (h *Histogram) P95() float64  { return h.Percentile(95) }
func (h *Histogram) P99() float64  { return h.Percentile(99) }
func (h *Histogram) P999() float64 { return h.Percentile(99.9) }

// String renders a db_bench-style summary line plus percentiles.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Count: %d Average: %.4f StdDev: %.2f\n", h.count, h.Mean(), h.StdDev())
	fmt.Fprintf(&b, "Min: %.4f Median: %.4f Max: %.4f\n", h.Min(), h.P50(), h.Max())
	fmt.Fprintf(&b, "Percentiles: P50: %.2f P75: %.2f P99: %.2f P99.9: %.2f P99.99: %.2f\n",
		h.P50(), h.Percentile(75), h.P99(), h.P999(), h.Percentile(99.99))
	return b.String()
}
