package bench

import (
	"net"
	"strings"
	"testing"

	"repro/internal/server"
)

// startKVServer serves a sharded router on an ephemeral port for the
// duration of the test.
func startKVServer(t *testing.T, shards int) string {
	t.Helper()
	router, err := server.OpenRouter(t.TempDir(), shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		router.Close()
		t.Fatal(err)
	}
	srv := server.Serve(ln, router)
	t.Cleanup(func() {
		srv.Close()
		if err := router.Close(); err != nil {
			t.Errorf("router close: %v", err)
		}
	})
	return srv.Addr().String()
}

// TestNetRunnerManyConnections drives a 2-shard server with 256 concurrent
// pipelined connections to completion — the ISSUE's acceptance bar; under
// -race this checks the whole client/server pipeline for data races.
func TestNetRunnerManyConnections(t *testing.T) {
	addr := startKVServer(t, 2)
	spec := ReadRandomWriteRandom(4096, 64, 1)
	r := &NetRunner{Addr: addr, Connections: 256, Pipeline: 1, Spec: spec}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted {
		t.Fatal("run aborted")
	}
	if rep.Ops != spec.TotalOps() {
		t.Errorf("completed %d ops, want %d", rep.Ops, spec.TotalOps())
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput %v, want > 0", rep.Throughput)
	}
	// The preloaded key space guarantees most reads hit.
	if rep.ReadMisses > rep.Ops/2 {
		t.Errorf("%d read misses out of %d ops: preload did not land", rep.ReadMisses, rep.Ops)
	}
	if !strings.Contains(rep.StatsDump, "KVServer aggregated stats") {
		t.Error("report missing server stats dump")
	}
}

// TestNetRunnerReadMulti runs the readmulti workload over the network: every
// read is a MultiGet batch fanned out across shards. The key space is fully
// preloaded, so every key must be found.
func TestNetRunnerReadMulti(t *testing.T) {
	addr := startKVServer(t, 4)
	spec := ReadMulti(512, 256, 4, 64, 1)
	r := &NetRunner{Addr: addr, Connections: 8, Pipeline: 4, Spec: spec}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != spec.TotalOps() {
		t.Errorf("completed %d ops, want %d", rep.Ops, spec.TotalOps())
	}
	if rep.ReadMisses != 0 {
		t.Errorf("%d read misses on a fully preloaded key space", rep.ReadMisses)
	}
	if rep.Workload != "readmulti/net" {
		t.Errorf("workload label %q", rep.Workload)
	}
}

// TestNetRunnerScans checks the scan fraction path end to end (cross-shard
// merge on the server).
func TestNetRunnerScans(t *testing.T) {
	addr := startKVServer(t, 2)
	spec := SeekRandom(256, 10, 64, 1)
	r := &NetRunner{Addr: addr, Connections: 4, Pipeline: 2, Spec: spec}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != spec.TotalOps() {
		t.Errorf("completed %d ops, want %d", rep.Ops, spec.TotalOps())
	}
	if rep.Bytes == 0 {
		t.Error("scans moved no bytes")
	}
}
