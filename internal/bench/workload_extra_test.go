package bench

import (
	"testing"

	"repro/internal/device"
	"repro/internal/lsm"
)

func TestFillSeqWritesInOrder(t *testing.T) {
	opts := lsm.DBBenchDefaults()
	opts.WriteBufferSize = 256 << 10
	db, _ := openBenchDB(t, device.NVMe(), device.Profile4C8G(), opts)
	defer db.Close()
	rep, err := (&Runner{DB: db, Spec: FillSeq(10000, 100, 3)}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 10000 {
		t.Fatalf("ops = %d", rep.Ops)
	}
	// Sequential fill produces strictly ordered keys: every key readable,
	// and the whole space densely packed from 0.
	for _, id := range []uint64{0, 1, 4999, 9999} {
		if _, err := db.Get(nil, NewKeyGen(16).Key(id)); err != nil {
			t.Fatalf("key %d missing: %v", id, err)
		}
	}
}

func TestFillSeqFasterThanFillRandom(t *testing.T) {
	run := func(spec *Spec) float64 {
		opts := lsm.DBBenchDefaults()
		opts.WriteBufferSize = 256 << 10
		db, _ := openBenchDB(t, device.NVMe(), device.Profile4C8G(), opts)
		defer db.Close()
		rep, err := (&Runner{DB: db, Spec: spec}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Throughput
	}
	seq := run(FillSeq(30000, 200, 3))
	rnd := run(FillRandom(30000, 200, 3))
	if seq <= rnd {
		t.Fatalf("fillseq (%.0f) should beat fillrandom (%.0f): no compaction overlap", seq, rnd)
	}
}

func TestOverwrite(t *testing.T) {
	opts := lsm.DBBenchDefaults()
	opts.WriteBufferSize = 256 << 10
	db, _ := openBenchDB(t, device.NVMe(), device.Profile4C8G(), opts)
	defer db.Close()
	rep, err := (&Runner{DB: db, Spec: Overwrite(5000, 100, 3)}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Write.Count() != 5000 {
		t.Fatalf("writes = %d", rep.Write.Count())
	}
}

func TestSeekRandom(t *testing.T) {
	opts := lsm.DBBenchDefaults()
	opts.WriteBufferSize = 256 << 10
	db, _ := openBenchDB(t, device.NVMe(), device.Profile4C8G(), opts)
	defer db.Close()
	rep, err := (&Runner{DB: db, Spec: SeekRandom(2000, 10, 100, 3)}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Read.Count() != 2000 || rep.Write.Count() != 0 {
		t.Fatalf("histograms: r=%d w=%d", rep.Read.Count(), rep.Write.Count())
	}
	// Scans touched real data: bytes ~ ops x scanLength x entry size.
	if rep.Bytes < 2000*10*50 {
		t.Fatalf("scan bytes = %d, scans did not iterate", rep.Bytes)
	}
	if db.Statistics().Get(lsm.TickerSeekCount) < 2000 {
		t.Fatal("seek ticker not incremented")
	}
}

func TestReadWhileWriting(t *testing.T) {
	opts := lsm.DBBenchDefaults()
	opts.WriteBufferSize = 256 << 10
	db, _ := openBenchDB(t, device.NVMe(), device.Profile4C8G(), opts)
	defer db.Close()
	spec := ReadWhileWriting(9000, 100, 3)
	rep, err := (&Runner{DB: db, Spec: spec}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// One writer thread of three: ~1/3 writes, ~2/3 reads.
	wfrac := float64(rep.Write.Count()) / float64(rep.Ops)
	if wfrac < 0.30 || wfrac > 0.37 {
		t.Fatalf("write fraction = %v, want ~1/3", wfrac)
	}
	if rep.ReadMisses > rep.Read.Count()/10 {
		t.Fatalf("too many read misses (%d/%d) against a preloaded space",
			rep.ReadMisses, rep.Read.Count())
	}
}

func TestNewWorkloadsByName(t *testing.T) {
	for _, name := range []string{"fillseq", "overwrite", "seekrandom", "readwhilewriting"} {
		s, err := WorkloadByName(name, 1000, 100, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSpecValidateScans(t *testing.T) {
	s := SeekRandom(100, 10, 100, 1)
	s.ScanLength = 0
	if err := s.Validate(); err == nil {
		t.Fatal("scan without length accepted")
	}
	s2 := FillRandom(100, 100, 1)
	s2.ScanFraction = 0.5
	s2.ReadFraction = 0.8
	if err := s2.Validate(); err == nil {
		t.Fatal("fractions over 1 accepted")
	}
	s3 := FillRandom(100, 100, 1)
	s3.WriterThreads = 5
	if err := s3.Validate(); err == nil {
		t.Fatal("writer threads beyond thread count accepted")
	}
}
