package bench

import (
	"fmt"
	"math"
	"math/rand"
)

// KeyGen produces db_bench-style fixed-width keys ("%016d") from key ids.
type KeyGen struct {
	keySize int
	buf     []byte
}

// NewKeyGen returns a generator for keys of the given width (min 16).
func NewKeyGen(keySize int) *KeyGen {
	if keySize < 16 {
		keySize = 16
	}
	return &KeyGen{keySize: keySize, buf: make([]byte, keySize)}
}

// Key renders key id into the generator's reusable buffer.
func (g *KeyGen) Key(id uint64) []byte {
	s := fmt.Sprintf("%0*d", g.keySize, id)
	copy(g.buf, s[len(s)-g.keySize:])
	return g.buf
}

// ValueGen produces pseudo-random values with a target compressibility,
// like db_bench's RandomGenerator (compression_ratio 0.5 by default).
type ValueGen struct {
	data []byte
	pos  int
}

// NewValueGen builds a pool of value bytes with the given compression ratio
// (fraction of incompressible bytes; 1.0 = fully random).
func NewValueGen(r *rand.Rand, ratio float64) *ValueGen {
	const poolSize = 1 << 20
	data := make([]byte, poolSize)
	if ratio <= 0 {
		ratio = 0.5
	}
	if ratio > 1 {
		ratio = 1
	}
	// Random prefix of each 100-byte piece, repeated filler after.
	piece := 100
	rndLen := int(float64(piece) * ratio)
	for i := 0; i < poolSize; i += piece {
		end := i + rndLen
		if end > poolSize {
			end = poolSize
		}
		for j := i; j < end; j++ {
			data[j] = byte(' ' + r.Intn(95))
		}
		for j := end; j < i+piece && j < poolSize; j++ {
			data[j] = 'x'
		}
	}
	return &ValueGen{data: data}
}

// Value returns a value slice of length n (valid until the next call).
func (g *ValueGen) Value(n int) []byte {
	if n > len(g.data) {
		n = len(g.data)
	}
	if g.pos+n > len(g.data) {
		g.pos = 0
	}
	v := g.data[g.pos : g.pos+n]
	g.pos += n + 13
	if g.pos >= len(g.data) {
		g.pos %= 61
	}
	return v
}

// KeyDist selects key ids for a workload.
type KeyDist interface {
	// Next returns the next key id in [0, N).
	Next(r *rand.Rand) uint64
	// Name describes the distribution.
	Name() string
}

// UniformDist picks uniformly from [0, N).
type UniformDist struct{ N uint64 }

// Next implements KeyDist.
func (d UniformDist) Next(r *rand.Rand) uint64 { return uint64(r.Int63n(int64(d.N))) }

// Name implements KeyDist.
func (d UniformDist) Name() string { return "uniform" }

// ZipfDist is a power-law distribution over [0, N) with exponent theta,
// matching the "two-term-exp" hot-key behaviour of Facebook's production
// traces (Cao et al., FAST'20) closely enough for benchmarking: a small
// fraction of keys receives most accesses.
type ZipfDist struct {
	N     uint64
	Theta float64 // typical 0.99 for mixgraph

	zetaN float64
	alpha float64
	eta   float64
}

// NewZipfDist precomputes the rejection-free Zipfian sampler of Gray et al.
// (the same algorithm YCSB uses).
func NewZipfDist(n uint64, theta float64) *ZipfDist {
	if theta <= 0 || theta >= 1 {
		theta = 0.99
	}
	d := &ZipfDist{N: n, Theta: theta}
	d.zetaN = zeta(n, theta)
	d.alpha = 1 / (1 - theta)
	d.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/d.zetaN)
	return d
}

func zeta(n uint64, theta float64) float64 {
	// Exact for small n; integral approximation beyond.
	const exactLimit = 10000
	var sum float64
	limit := n
	if limit > exactLimit {
		limit = exactLimit
	}
	for i := uint64(1); i <= limit; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > exactLimit {
		// ∫ x^-theta dx from exactLimit to n.
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(exactLimit), 1-theta)) / (1 - theta)
	}
	return sum
}

// Next implements KeyDist. Hot ids are scattered across the key space by a
// multiplicative hash so the hot set is not one contiguous range.
func (d *ZipfDist) Next(r *rand.Rand) uint64 {
	u := r.Float64()
	uz := u * d.zetaN
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, d.Theta):
		rank = 1
	default:
		rank = uint64(float64(d.N) * math.Pow(d.eta*u-d.eta+1, d.alpha))
	}
	if rank >= d.N {
		rank = d.N - 1
	}
	// Scatter.
	return (rank * 0x9e3779b97f4a7c15) % d.N
}

// Name implements KeyDist.
func (d *ZipfDist) Name() string { return fmt.Sprintf("zipf(%.2f)", d.Theta) }

// SequentialDist yields 0,1,2,... (fillseq).
type SequentialDist struct{ next uint64 }

// Next implements KeyDist.
func (d *SequentialDist) Next(*rand.Rand) uint64 {
	v := d.next
	d.next++
	return v
}

// Name implements KeyDist.
func (d *SequentialDist) Name() string { return "sequential" }
