#!/bin/sh
# serverbench: smoke-test the networked KV service end to end.
#
# Builds kvserver and dbbench, starts a 2-shard server on an ephemeral port,
# drives a short mixed workload over pipelined connections, asserts nonzero
# throughput, then checks the server shuts down cleanly on SIGINT.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
trap 'status=$?; [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null; wait 2>/dev/null || true; rm -rf "$WORK"; exit $status' EXIT INT TERM

echo "serverbench: building binaries"
$GO build -o "$WORK/kvserver" ./cmd/kvserver
$GO build -o "$WORK/dbbench" ./cmd/dbbench

echo "serverbench: starting kvserver"
"$WORK/kvserver" -addr 127.0.0.1:0 -db "$WORK/db" -shards 2 \
    -ready_file "$WORK/addr" >"$WORK/server.log" 2>&1 &
SRV_PID=$!

# Wait for the ready file (the server writes its bound address atomically).
i=0
while [ ! -f "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serverbench: FAIL: server never became ready" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "serverbench: FAIL: server exited during startup" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$WORK/addr")
echo "serverbench: server ready on $ADDR"

echo "serverbench: running mixed workload over 16 pipelined connections"
"$WORK/dbbench" -server "$ADDR" -benchmarks readrandomwriterandom \
    -num 20000 -value_size 128 -connections 16 -pipeline 4 \
    >"$WORK/bench.out" 2>&1
cat "$WORK/bench.out"

# The report prints "<workload> : ... ops/sec". Reject a zero rate.
if ! grep -Eq '[1-9][0-9,.]* *ops/sec' "$WORK/bench.out"; then
    echo "serverbench: FAIL: no nonzero ops/sec in report" >&2
    exit 1
fi

echo "serverbench: asking server to shut down"
kill -INT "$SRV_PID"
wait "$SRV_PID" || {
    echo "serverbench: FAIL: server exited nonzero" >&2
    cat "$WORK/server.log" >&2
    exit 1
}
SRV_PID=
if ! grep -q "clean shutdown" "$WORK/server.log"; then
    echo "serverbench: FAIL: no clean-shutdown marker in server log" >&2
    cat "$WORK/server.log" >&2
    exit 1
fi
echo "serverbench: PASS"
