#!/bin/sh
# liveretune: smoke-test live retuning end to end through the server path.
#
# Builds kvserver, dbbench and elmotune, starts a 2-shard server on an
# ephemeral port, drives a background mixed workload against it, then runs
# the tuning loop with the mock LLM in -live mode: accepted changes must
# reach the running server through the SetOptions wire op (no restart), and
# the session must report at least one applied round.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
trap 'status=$?; [ -n "${LOAD_PID:-}" ] && kill "$LOAD_PID" 2>/dev/null; [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null; wait 2>/dev/null || true; rm -rf "$WORK"; exit $status' EXIT INT TERM

echo "liveretune: building binaries"
$GO build -o "$WORK/kvserver" ./cmd/kvserver
$GO build -o "$WORK/dbbench" ./cmd/dbbench
$GO build -o "$WORK/elmotune" ./cmd/elmotune

echo "liveretune: starting kvserver"
"$WORK/kvserver" -addr 127.0.0.1:0 -db "$WORK/db" -shards 2 \
    -ready_file "$WORK/addr" >"$WORK/server.log" 2>&1 &
SRV_PID=$!

i=0
while [ ! -f "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "liveretune: FAIL: server never became ready" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "liveretune: FAIL: server exited during startup" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$WORK/addr")
echo "liveretune: server ready on $ADDR"

echo "liveretune: starting background load"
"$WORK/dbbench" -server "$ADDR" -benchmarks readrandomwriterandom \
    -num 2000000 -value_size 128 -connections 8 -pipeline 4 \
    >"$WORK/load.out" 2>&1 &
LOAD_PID=$!

echo "liveretune: retuning the RUNNING server with the mock LLM"
"$WORK/elmotune" -live -server "$ADDR" -workload readrandomwriterandom \
    -iters 2 -window 1s -insights "$WORK/insights.json" \
    -trace "$WORK/live.jsonl" -out "$WORK/OPTIONS-live" \
    >"$WORK/tune.out" 2>&1
cat "$WORK/tune.out"

# The loop must have applied at least one change set in place.
if ! grep -q "via in_place" "$WORK/tune.out"; then
    echo "liveretune: FAIL: no in-place applied round reported" >&2
    cat "$WORK/server.log" >&2
    exit 1
fi
# The trace must record the live rounds with their apply mode.
if ! grep -q '"kind":"live_round"' "$WORK/live.jsonl"; then
    echo "liveretune: FAIL: no live_round records in the trace" >&2
    exit 1
fi
# A cross-session insight must have been persisted.
if ! grep -q '"workload"' "$WORK/insights.json"; then
    echo "liveretune: FAIL: no insight recorded" >&2
    exit 1
fi
# The tuned OPTIONS file must exist and parse as ini.
if [ ! -s "$WORK/OPTIONS-live" ]; then
    echo "liveretune: FAIL: no OPTIONS file written" >&2
    exit 1
fi

kill "$LOAD_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true
LOAD_PID=

echo "liveretune: asking server to shut down"
kill -INT "$SRV_PID"
wait "$SRV_PID" || {
    echo "liveretune: FAIL: server exited nonzero" >&2
    cat "$WORK/server.log" >&2
    exit 1
}
SRV_PID=
if ! grep -q "clean shutdown" "$WORK/server.log"; then
    echo "liveretune: FAIL: no clean-shutdown marker in server log" >&2
    cat "$WORK/server.log" >&2
    exit 1
fi
echo "liveretune: PASS"
